package pdes

import (
	"errors"
	"flag"
	"math"
	"strings"
	"testing"
)

var (
	flagQueue   = flag.String("pdes-queue", "", `override Config.Queue in package tests ("heap" or "ladder")`)
	flagBarrier = flag.String("pdes-barrier", "", `override Config.Barrier in package tests ("chan" or "sense")`)
	flagSync    = flag.String("pdes-sync", "", `override Config.Sync in package tests ("conservative" or "optimistic")`)
)

// testCfg applies the package test flags — through the same Parse*
// functions every other consumer uses — so CI can re-run the whole
// determinism suite under any queue, barrier, and sync discipline:
//
//	go test -race ./internal/pdes -args -pdes-queue=heap -pdes-barrier=chan
//	go test -race ./internal/pdes -args -pdes-sync=optimistic
func testCfg(cfg Config) Config {
	cfg = testCfgCons(cfg)
	if *flagSync != "" {
		k, err := ParseSyncKind(*flagSync)
		if err != nil {
			panic(err)
		}
		cfg.Sync = k
	}
	return cfg
}

// testCfgCons applies only the queue and barrier flags — for tests probing
// conservative-only behaviour (the emission-time lookahead gate) that the
// optimistic engine deliberately repairs instead of reporting.
func testCfgCons(cfg Config) Config {
	if *flagQueue != "" {
		k, err := ParseQueueKind(*flagQueue)
		if err != nil {
			panic(err)
		}
		cfg.Queue = k
	}
	if *flagBarrier != "" {
		k, err := ParseBarrierKind(*flagBarrier)
		if err != nil {
			panic(err)
		}
		cfg.Barrier = k
	}
	return cfg
}

func mustWave(t *testing.T, n, steps int, compute, spike float64, offsets []int, delays []float64) *IdleWave {
	t.Helper()
	w, err := NewIdleWave(n, steps, compute, spike, offsets, delays)
	if err != nil {
		t.Fatalf("NewIdleWave: %v", err)
	}
	return w
}

// TestIdleWaveDeterministicAcrossConfigs is the engine's core contract: the
// same workload produces byte-identical virtual results at any partition and
// worker count, including counts that do not divide the rank count.
func TestIdleWaveDeterministicAcrossConfigs(t *testing.T) {
	const n, steps = 512, 10
	const c = 50e-6
	mk := func() *IdleWave {
		return mustWave(t, n, steps, c, 3*c, []int{1, 4}, []float64{2e-6, 3e-6})
	}

	base := mk()
	bres, err := Run(base, testCfg(Config{Partitions: 1, Workers: 1, Lookahead: base.MinDelay()}))
	if err != nil {
		t.Fatalf("baseline run: %v", err)
	}
	if bres.Events == 0 || bres.VirtualTime <= 0 {
		t.Fatalf("baseline produced no work: %+v", bres)
	}

	configs := []Config{
		{Partitions: 2, Workers: 1},
		{Partitions: 4, Workers: 2},
		{Partitions: 8, Workers: 8},
		{Partitions: 5, Workers: 3}, // does not divide 512
		{Partitions: 64, Workers: 4},
		{Partitions: 256, Workers: 0}, // the full batch matrix, clamped workers
	}
	for _, cfg := range configs {
		w := mk()
		cfg.Lookahead = w.MinDelay()
		res, err := Run(w, testCfg(cfg))
		if err != nil {
			t.Fatalf("run %d/%d: %v", cfg.Partitions, cfg.Workers, err)
		}
		if res.Events != bres.Events {
			t.Errorf("parts=%d workers=%d: %d events, baseline %d", cfg.Partitions, cfg.Workers, res.Events, bres.Events)
		}
		if res.VirtualTime != bres.VirtualTime {
			t.Errorf("parts=%d workers=%d: virtual time %g, baseline %g", cfg.Partitions, cfg.Workers, res.VirtualTime, bres.VirtualTime)
		}
		for r := 0; r < n; r++ {
			if w.Arrival(r) != base.Arrival(r) {
				t.Fatalf("parts=%d workers=%d: rank %d arrival %g, baseline %g", cfg.Partitions, cfg.Workers, r, w.Arrival(r), base.Arrival(r))
			}
		}
	}

	if bres.Partitions != 1 || bres.Workers != 1 {
		t.Errorf("baseline resolved to %d/%d, want 1/1", bres.Partitions, bres.Workers)
	}
}

// TestIdleWaveMatchesClassicKernel cross-checks the partitioned engine
// against the single-heap sim.Kernel on the same workload.
func TestIdleWaveMatchesClassicKernel(t *testing.T) {
	const n, steps = 256, 8
	const c = 50e-6
	offsets, delays := []int{1, 3}, []float64{2e-6, 4e-6}

	pw := mustWave(t, n, steps, c, 3*c, offsets, delays)
	pres, err := Run(pw, testCfg(Config{Partitions: 8, Workers: 4, Lookahead: pw.MinDelay()}))
	if err != nil {
		t.Fatalf("partitioned run: %v", err)
	}

	sw := mustWave(t, n, steps, c, 3*c, offsets, delays)
	svt, sev, err := RunOnSim(sw, sw.MinDelay(), nil)
	if err != nil {
		t.Fatalf("classic run: %v", err)
	}

	if pres.VirtualTime != svt {
		t.Errorf("virtual time: partitioned %g, classic %g", pres.VirtualTime, svt)
	}
	if pres.Events != sev {
		t.Errorf("events: partitioned %d, classic %d", pres.Events, sev)
	}
	for r := 0; r < n; r++ {
		if pw.Arrival(r) != sw.Arrival(r) {
			t.Fatalf("rank %d arrival: partitioned %g, classic %g", r, pw.Arrival(r), sw.Arrival(r))
		}
	}
}

// TestIdleWaveSpeedMatchesAnalytic checks the physics: the measured wave
// speed from the linear fit tracks d_max/(c+delta_max).
func TestIdleWaveSpeedMatchesAnalytic(t *testing.T) {
	const n, steps = 2048, 12
	const c = 50e-6
	w := mustWave(t, n, steps, c, 3*c, []int{1}, []float64{2e-6})
	if _, err := Run(w, testCfg(Config{Partitions: 8, Lookahead: w.MinDelay()})); err != nil {
		t.Fatalf("run: %v", err)
	}
	speed, fit, perturbed, err := w.WaveSpeed()
	if err != nil {
		t.Fatalf("WaveSpeed: %v", err)
	}
	analytic := w.AnalyticSpeed()
	if ratio := speed / analytic; math.Abs(ratio-1) > 0.1 {
		t.Errorf("measured speed %g vs analytic %g (ratio %.3f), want within 10%%", speed, analytic, ratio)
	}
	if fit.R2 < 0.98 {
		t.Errorf("fit R2 = %g, want >= 0.98", fit.R2)
	}
	// The spike perturbs roughly one longest-offset hop per step.
	if perturbed < steps || perturbed > 4*steps {
		t.Errorf("perturbed %d ranks, expected on the order of %d", perturbed, steps)
	}
}

// TestIdleWaveQuietStaysOnSchedule: with no spike every rank holds the
// lockstep cadence, no arrival is recorded, and the run ends at the exact
// analytic makespan.
func TestIdleWaveQuietStaysOnSchedule(t *testing.T) {
	const n, steps = 128, 6
	const c = 50e-6
	w := mustWave(t, n, steps, c, 0, []int{1, 2}, []float64{2e-6, 3e-6})
	res, err := Run(w, testCfg(Config{Partitions: 4, Lookahead: w.MinDelay()}))
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	for r := 0; r < n; r++ {
		if w.Arrival(r) >= 0 {
			t.Fatalf("quiet run recorded an arrival on rank %d at %g", r, w.Arrival(r))
		}
	}
	if _, _, _, err := w.WaveSpeed(); err == nil {
		t.Error("WaveSpeed succeeded on a quiet run, want an error")
	}
	// Last event: the step-(steps-1) halos land at steps*cadence.
	want := float64(steps) * w.cadence()
	if math.Abs(res.VirtualTime-want) > 1e-9*want {
		t.Errorf("virtual time %g, want %g", res.VirtualTime, want)
	}
	// Per step: one compute completion per rank plus 2*(n-d) halos per offset.
	halos := uint64(0)
	for _, d := range w.Offsets {
		halos += uint64(2 * (n - d))
	}
	if want := uint64(steps) * (n + halos); res.Events != want {
		t.Errorf("events %d, want %d", res.Events, want)
	}
}

// crossEmit schedules one self event on rank 0, whose handler emits to the
// far rank with a configurable delay — the probe for the lookahead gate.
type crossEmit struct {
	n     int
	at    float64
	delay float64
}

func (w *crossEmit) Ranks() int { return w.n }
func (w *crossEmit) Init(s Sched, rank int) {
	if rank == 0 {
		s.At(0, w.at, 1, 0, 0)
	}
}
func (w *crossEmit) Handle(s Sched, ev Event) {
	if ev.Kind == 1 {
		s.At(w.n-1, ev.Time+w.delay, 2, 0, 0)
	}
}

// crossEmit has no mutable state, so the capability is a pair of no-ops —
// the smallest possible StatefulWorkload.
func (w *crossEmit) Snapshot(int) any { return nil }
func (w *crossEmit) Restore(int, any) {}

func TestLookaheadViolationReported(t *testing.T) {
	const look = 1e-6
	w := &crossEmit{n: 2, at: look, delay: look / 2}
	// The gate is conservative-only behaviour: the optimistic engine
	// accepts the same emission and repairs it (see timewarp_test.go), so
	// this case pins the sync discipline instead of taking the flag.
	_, err := Run(w, testCfgCons(Config{Partitions: 2, Lookahead: look}))
	if err == nil || !strings.Contains(err.Error(), "lookahead violation") {
		t.Fatalf("got %v, want a lookahead violation", err)
	}

	// The same emission with delay >= lookahead is legal.
	ok := &crossEmit{n: 2, at: look, delay: look}
	if _, err := Run(ok, testCfg(Config{Partitions: 2, Lookahead: look})); err != nil {
		t.Fatalf("legal delay rejected: %v", err)
	}

	// And on a single partition nothing crosses, so no gate applies.
	if _, err := Run(&crossEmit{n: 2, at: look, delay: look / 2}, testCfg(Config{Partitions: 1, Lookahead: look})); err != nil {
		t.Fatalf("single-partition run rejected: %v", err)
	}
}

type badDst struct{ n int }

func (w *badDst) Ranks() int { return w.n }
func (w *badDst) Init(s Sched, rank int) {
	if rank == 0 {
		s.At(w.n+3, 0, 1, 0, 0)
	}
}
func (w *badDst) Handle(Sched, Event) {}
func (w *badDst) Snapshot(int) any    { return nil }
func (w *badDst) Restore(int, any)    {}

func TestBadDestinationReported(t *testing.T) {
	_, err := Run(&badDst{n: 4}, testCfg(Config{Partitions: 2, Lookahead: 1e-6}))
	if err == nil || !strings.Contains(err.Error(), "outside") {
		t.Fatalf("got %v, want an out-of-range destination error", err)
	}
}

type panicky struct{ n int }

func (w *panicky) Ranks() int { return w.n }
func (w *panicky) Init(s Sched, rank int) {
	s.At(rank, 1e-6, 1, 0, 0)
}
func (w *panicky) Handle(s Sched, ev Event) {
	if ev.Dst == 1 {
		panic("boom")
	}
}
func (w *panicky) Snapshot(int) any { return nil }
func (w *panicky) Restore(int, any) {}

func TestHandlerPanicRecovered(t *testing.T) {
	_, err := Run(&panicky{n: 4}, testCfg(Config{Partitions: 4, Lookahead: 1e-6}))
	if err == nil || !strings.Contains(err.Error(), "boom") {
		t.Fatalf("got %v, want the recovered handler panic", err)
	}
}

func TestConfigErrors(t *testing.T) {
	w := mustWave(t, 4, 1, 1e-6, 0, []int{1}, []float64{1e-6})
	cases := []struct {
		name string
		cfg  Config
		want error
	}{
		{"zero lookahead", Config{}, ErrLookahead},
		{"negative lookahead", Config{Lookahead: -1}, ErrLookahead},
		{"too many partitions", Config{Lookahead: 1e-6, Partitions: 1 << 20}, ErrPartitions},
		{"bucket width under heap", Config{Lookahead: 1e-6, Queue: QueueHeap, BucketWidth: 1e-7}, ErrBucketWidth},
		{"negative checkpoint interval", Config{Lookahead: 1e-6, Sync: SyncOptimistic, CheckpointInterval: -1}, ErrCheckpoint},
		{"checkpoint interval without optimism", Config{Lookahead: 1e-6, CheckpointInterval: 16}, ErrCheckpoint},
		{"sync kind out of range", Config{Lookahead: 1e-6, Sync: SyncKind(7)}, ErrSync},
		{"queue kind out of range", Config{Lookahead: 1e-6, Queue: QueueKind(7)}, ErrConfig},
		{"barrier kind out of range", Config{Lookahead: 1e-6, Barrier: BarrierKind(7)}, ErrConfig},
	}
	for _, tc := range cases {
		if err := tc.cfg.Validate(); !errors.Is(err, tc.want) {
			t.Errorf("Validate %s: got %v, want %v", tc.name, err, tc.want)
		}
		// Run consolidates the same checks, and every failure is ErrConfig.
		if _, err := Run(w, tc.cfg); !errors.Is(err, tc.want) || !errors.Is(err, ErrConfig) {
			t.Errorf("Run %s: got %v, want %v wrapping ErrConfig", tc.name, err, tc.want)
		}
	}
	// Run still resolves defaults Validate leaves alone.
	if err := (Config{Lookahead: 1e-6, Partitions: -3, Workers: -2}).Validate(); err != nil {
		t.Errorf("defaults should validate: %v", err)
	}
}

// TestKindParseRoundTrip pins the canonical parse surface every consumer
// (bench flags, wastelab, the daemon's query params) routes through: each
// kind's String form parses back to itself, each implements flag.Value,
// and failures are typed ErrConfig.
func TestKindParseRoundTrip(t *testing.T) {
	for _, q := range []QueueKind{QueueLadder, QueueHeap} {
		got, err := ParseQueueKind(q.String())
		if err != nil || got != q {
			t.Errorf("ParseQueueKind(%q) = %v, %v", q.String(), got, err)
		}
	}
	for _, b := range []BarrierKind{BarrierSense, BarrierChan} {
		got, err := ParseBarrierKind(b.String())
		if err != nil || got != b {
			t.Errorf("ParseBarrierKind(%q) = %v, %v", b.String(), got, err)
		}
	}
	for _, s := range []SyncKind{SyncConservative, SyncOptimistic} {
		got, err := ParseSyncKind(s.String())
		if err != nil || got != s {
			t.Errorf("ParseSyncKind(%q) = %v, %v", s.String(), got, err)
		}
	}
	if _, err := ParseQueueKind("splay"); !errors.Is(err, ErrConfig) {
		t.Errorf("bad queue kind: got %v, want ErrConfig", err)
	}
	if _, err := ParseBarrierKind("tree"); !errors.Is(err, ErrConfig) {
		t.Errorf("bad barrier kind: got %v, want ErrConfig", err)
	}
	if _, err := ParseSyncKind("psychic"); !errors.Is(err, ErrConfig) {
		t.Errorf("bad sync kind: got %v, want ErrConfig", err)
	}

	// flag.Value: a flag.FlagSet can own a kind directly.
	var q QueueKind
	var b BarrierKind
	var s SyncKind
	fs := flag.NewFlagSet("kinds", flag.ContinueOnError)
	fs.Var(&q, "queue", "")
	fs.Var(&b, "barrier", "")
	fs.Var(&s, "sync", "")
	if err := fs.Parse([]string{"-queue=heap", "-barrier=chan", "-sync=optimistic"}); err != nil {
		t.Fatalf("flag parse: %v", err)
	}
	if q != QueueHeap || b != BarrierChan || s != SyncOptimistic {
		t.Errorf("flag.Value parse got %v/%v/%v", q, b, s)
	}
	if err := fs.Parse([]string{"-sync=never"}); err == nil {
		t.Error("flag.Value accepted a bad sync kind")
	}
}

func TestCostModelShape(t *testing.T) {
	m := CostModel{
		Events: 1 << 22, Ranks: 1 << 20, Horizon: 1e-3,
		EventSec: 100e-9, BarrierSec: 5e-6, PartSec: 2e-6,
	}
	const cores = 8
	const look = 2e-6

	if m.Wall(1, cores, look) <= m.Wall(cores, cores, look) {
		t.Error("one partition should cost more than one per core")
	}
	if m.Wall(8, cores, look/8) <= m.Wall(8, cores, look) {
		t.Error("a narrower window should cost more")
	}
	if !math.IsInf(m.Wall(8, cores, 0), 1) {
		t.Error("zero lookahead should cost +Inf")
	}

	// Unimodal over a doubling grid: once the curve turns up it stays up —
	// required by the golden-section tuner that owns these knobs.
	prev := math.Inf(1)
	rising := false
	for parts := 1; parts <= 1024; parts *= 2 {
		wall := m.Wall(parts, cores, look)
		if wall > prev {
			rising = true
		} else if rising {
			t.Fatalf("cost model not unimodal: dips again at parts=%d", parts)
		}
		prev = wall
	}
}

func TestLadderCostModelShape(t *testing.T) {
	m := CostModel{
		Events: 1 << 22, Ranks: 1 << 20, Horizon: 1e-3,
		EventSec: 100e-9, BarrierSec: 5e-6, PartSec: 2e-6, BucketSec: 1e-6,
	}
	const cores = 8
	const look = 2e-6

	if !math.IsInf(m.LadderWall(8, cores, look, 0), 1) {
		t.Error("zero bucket width should cost +Inf")
	}
	// The ladder at any sane width beats the heap model: that is the
	// tentpole's claim in model form.
	if m.LadderWall(8, cores, look, look/4) >= m.Wall(8, cores, look) {
		t.Error("ladder model should beat the heap model at the default width")
	}

	// Unimodal in the bucket width over a doubling grid — required by the
	// golden-section tuner owning F29-bucket.
	prev := math.Inf(1)
	rising := false
	for div := 1; div <= 1<<12; div *= 2 {
		wall := m.LadderWall(8, cores, look, look/float64(div))
		if wall > prev {
			rising = true
		} else if rising {
			t.Fatalf("ladder cost model not unimodal: dips again at divisor=%d", div)
		}
		prev = wall
	}
}

func TestTimeWarpCostModelShape(t *testing.T) {
	m := CostModel{
		Events: 1 << 22, Ranks: 1 << 20, Horizon: 1e-3,
		EventSec: 100e-9, BarrierSec: 5e-6, PartSec: 2e-6, SnapSec: 40e-9,
	}
	const cores = 8
	const look = 2e-6
	const rbFrac = 0.01

	if !math.IsInf(m.TimeWarpWall(8, cores, 0, look, rbFrac), 1) {
		t.Error("interval below 1 should cost +Inf")
	}
	if !math.IsInf(m.TimeWarpWall(8, cores, 64, 0, rbFrac), 1) {
		t.Error("zero lookahead should cost +Inf")
	}
	// Both interval extremes must lose to the middle: interval 1 drowns in
	// snapshots, a huge interval drowns in coast-forward replay.
	mid := m.TimeWarpWall(8, cores, 64, look, rbFrac)
	if m.TimeWarpWall(8, cores, 1, look, rbFrac) <= mid {
		t.Error("checkpoint-every-event should cost more than the default interval")
	}
	if m.TimeWarpWall(8, cores, 1<<16, look, rbFrac) <= mid {
		t.Error("a giant interval should pay replay cost above the default")
	}
	// With no rollbacks the replay term vanishes, so cost is monotone
	// nonincreasing in the interval.
	if m.TimeWarpWall(8, cores, 1<<12, look, 0) > m.TimeWarpWall(8, cores, 64, look, 0) {
		t.Error("with zero rollbacks, larger intervals should never cost more")
	}

	// Unimodal in the interval over a doubling grid — required by the
	// golden-section tuner owning F30-interval.
	prev := math.Inf(1)
	rising := false
	for iv := 1; iv <= 1<<16; iv *= 2 {
		wall := m.TimeWarpWall(8, cores, iv, look, rbFrac)
		if wall > prev {
			rising = true
		} else if rising {
			t.Fatalf("time-warp cost model not unimodal: dips again at interval=%d", iv)
		}
		prev = wall
	}
}
