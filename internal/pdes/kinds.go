package pdes

import "fmt"

// This file is the one shared home of the engine's enum knobs. Every kind
// has a canonical String form and a Parse function, and implements
// flag.Value, so the bench flags, wastelab, and the daemon's query params
// all route through the same parser instead of growing per-site switches.

// QueueKind selects the per-partition pending-event structure. Both kinds
// pop in the identical (Time, Src, Seq) total order, so results are
// byte-identical either way — only speed changes.
type QueueKind int

const (
	// QueueLadder (the default) is the ladder/calendar queue: near-future
	// bucket ring + far-future overflow, O(1) amortized push and pops
	// paying only the per-bucket population.
	QueueLadder QueueKind = iota
	// QueueHeap is the classic binary heap: O(log n) push and pop at the
	// full partition depth — the wasteful baseline F29 tables.
	QueueHeap
)

// String returns the canonical spelling ("ladder", "heap") accepted by
// ParseQueueKind.
func (k QueueKind) String() string {
	if k == QueueHeap {
		return "heap"
	}
	return "ladder"
}

// Set implements flag.Value via ParseQueueKind.
func (k *QueueKind) Set(s string) error {
	v, err := ParseQueueKind(s)
	if err != nil {
		return err
	}
	*k = v
	return nil
}

// ParseQueueKind parses the canonical String form of a QueueKind.
func ParseQueueKind(s string) (QueueKind, error) {
	switch s {
	case "ladder":
		return QueueLadder, nil
	case "heap":
		return QueueHeap, nil
	}
	return 0, fmt.Errorf("%w: queue %q (want ladder or heap)", ErrConfig, s)
}

// BarrierKind selects the per-window worker synchronisation for
// multi-worker runs. Irrelevant to results (and skipped entirely when the
// resolved worker count is 1 — the window loop runs inline).
type BarrierKind int

const (
	// BarrierSense (the default) is a padded sense-reversing barrier with
	// the GVT min-reduce inlined into the coordinator: one atomic publish
	// and one bounded spin per worker per window.
	BarrierSense BarrierKind = iota
	// BarrierChan is the chan-broadcast + report-channel hand-off: two
	// channel operations per worker per window — the wasteful baseline
	// F29 tables.
	BarrierChan
)

// String returns the canonical spelling ("sense", "chan") accepted by
// ParseBarrierKind.
func (k BarrierKind) String() string {
	if k == BarrierChan {
		return "chan"
	}
	return "sense"
}

// Set implements flag.Value via ParseBarrierKind.
func (k *BarrierKind) Set(s string) error {
	v, err := ParseBarrierKind(s)
	if err != nil {
		return err
	}
	*k = v
	return nil
}

// ParseBarrierKind parses the canonical String form of a BarrierKind.
func ParseBarrierKind(s string) (BarrierKind, error) {
	switch s {
	case "sense":
		return BarrierSense, nil
	case "chan":
		return BarrierChan, nil
	}
	return 0, fmt.Errorf("%w: barrier %q (want sense or chan)", ErrConfig, s)
}

// SyncKind selects the synchronisation discipline: wait out the window
// bound (conservative) or speculate past it and repair (optimistic
// Time Warp). Results are byte-identical either way — optimism only
// changes how much work is executed to commit them.
type SyncKind int

const (
	// SyncConservative (the default) processes only events below the
	// window bound gvt+lookahead; no event is ever rolled back.
	SyncConservative SyncKind = iota
	// SyncOptimistic speculates past the window bound with periodic state
	// checkpoints, rolling back on straggler arrival and cancelling
	// in-flight emissions with anti-messages. Requires the workload to
	// implement StatefulWorkload.
	SyncOptimistic
)

// String returns the canonical spelling ("conservative", "optimistic")
// accepted by ParseSyncKind.
func (k SyncKind) String() string {
	if k == SyncOptimistic {
		return "optimistic"
	}
	return "conservative"
}

// Set implements flag.Value via ParseSyncKind.
func (k *SyncKind) Set(s string) error {
	v, err := ParseSyncKind(s)
	if err != nil {
		return err
	}
	*k = v
	return nil
}

// ParseSyncKind parses the canonical String form of a SyncKind.
func ParseSyncKind(s string) (SyncKind, error) {
	switch s {
	case "conservative":
		return SyncConservative, nil
	case "optimistic":
		return SyncOptimistic, nil
	}
	return 0, fmt.Errorf("%w: sync %q (want conservative or optimistic)", ErrConfig, s)
}
