package pdes

// Per-partition event queues are hand-rolled binary heaps over Event
// values: no container/heap interface boxing, no per-event allocation, and
// the slab backing each heap is reused for the life of the run.

// evLess orders events by the total key (Time, Src, Seq). Seq is unique
// per source, so no two events compare equal and pop order is a total
// order — the root of the engine's determinism guarantee.
func evLess(a, b *Event) bool {
	if a.Time != b.Time {
		return a.Time < b.Time
	}
	if a.Src != b.Src {
		return a.Src < b.Src
	}
	return a.Seq < b.Seq
}

// heapPush inserts ev, sifting up.
func heapPush(h *[]Event, ev Event) {
	hh := append(*h, ev)
	*h = hh
	i := len(hh) - 1
	for i > 0 {
		p := (i - 1) / 2
		if !evLess(&hh[i], &hh[p]) {
			break
		}
		hh[i], hh[p] = hh[p], hh[i]
		i = p
	}
}

// heapPop removes and returns the minimum event, sifting down. The caller
// guarantees the heap is non-empty.
func heapPop(h *[]Event) Event {
	hh := *h
	top := hh[0]
	n := len(hh) - 1
	hh[0] = hh[n]
	hh = hh[:n]
	*h = hh
	i := 0
	for {
		l := 2*i + 1
		if l >= n {
			break
		}
		m := l
		if r := l + 1; r < n && evLess(&hh[r], &hh[l]) {
			m = r
		}
		if !evLess(&hh[m], &hh[i]) {
			break
		}
		hh[i], hh[m] = hh[m], hh[i]
		i = m
	}
	return top
}
