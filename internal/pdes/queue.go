package pdes

// Per-partition pending-event queues come in two disciplines, selectable
// via Config.Queue:
//
//   - QueueHeap: a hand-rolled binary heap over Event values — O(log n)
//     push and pop at the full partition depth, with 40-byte element swaps
//     down every level. The wasteful baseline F29 tables.
//   - QueueLadder: a ladder (calendar) queue — a ring of near-future
//     buckets one Config.BucketWidth of virtual time wide, a far-future
//     overflow list, and a sorted run of already-merged events popped by
//     index increment. Pushes are O(1) appends; each event is sorted once,
//     inside its own small bucket, when the rung frontier reaches it; pops
//     are a copy and a bounds check.
//
// The ladder's correctness hinges on one property: the bucket index
// idx(t) = floor((t-base)/width) is monotone in t, so every event in
// bucket i precedes every event in bucket j > i, and a sorted bucket can
// simply be appended to the sorted run — merging is concatenation. The
// same idx expression that places a push also guards the pop: the run's
// head is safe to pop iff its bucket has been merged (idx <= cur) or
// nothing else is pending. Both disciplines therefore pop in the exact
// total order (Time, Src, Seq) and produce byte-identical engine results
// (property-tested in queue_test.go). Neither boxes events or allocates
// per event; bucket, run, and overflow slabs are reused for the life of
// the run.

// evLess orders events by the total key (Time, Src, Seq). Seq is unique
// per source, so no two events compare equal and pop order is a total
// order — the root of the engine's determinism guarantee.
func evLess(a, b *Event) bool {
	if a.Time != b.Time {
		return a.Time < b.Time
	}
	if a.Src != b.Src {
		return a.Src < b.Src
	}
	return a.Seq < b.Seq
}

// evQueue is the discipline interface the window loop drives. peek may
// restructure the queue (the ladder merges buckets lazily) but never
// changes the pop order.
type evQueue interface {
	push(ev Event)
	// pushSorted reinserts a (Time, Src, Seq)-sorted batch — a rollback's
	// undone log suffix. Must be equivalent to pushing each event in order;
	// the ladder overrides the per-event slow path with one merge pass.
	pushSorted(evs []Event)
	// peek returns the minimum pending timestamp; ok is false when empty.
	peek() (t float64, ok bool)
	// pop removes and returns the minimum event. The caller guarantees the
	// queue is non-empty (peek returned ok).
	pop() Event
	len() int
}

// heapPush inserts ev, sifting up.
func heapPush(h *[]Event, ev Event) {
	hh := append(*h, ev)
	*h = hh
	i := len(hh) - 1
	for i > 0 {
		p := (i - 1) / 2
		if !evLess(&hh[i], &hh[p]) {
			break
		}
		hh[i], hh[p] = hh[p], hh[i]
		i = p
	}
}

// heapPop removes and returns the minimum event, sifting down. The caller
// guarantees the heap is non-empty.
func heapPop(h *[]Event) Event {
	hh := *h
	top := hh[0]
	n := len(hh) - 1
	hh[0] = hh[n]
	hh = hh[:n]
	*h = hh
	i := 0
	for {
		l := 2*i + 1
		if l >= n {
			break
		}
		m := l
		if r := l + 1; r < n && evLess(&hh[r], &hh[l]) {
			m = r
		}
		if !evLess(&hh[m], &hh[i]) {
			break
		}
		hh[i], hh[m] = hh[m], hh[i]
		i = m
	}
	return top
}

// binHeap is the classic single binary heap discipline.
type binHeap struct {
	h []Event
}

func (q *binHeap) push(ev Event) { heapPush(&q.h, ev) }
func (q *binHeap) pop() Event    { return heapPop(&q.h) }
func (q *binHeap) len() int      { return len(q.h) }

// pushSorted for the heap is just k sift-ups — O(k log n) already, no
// quadratic path to avoid.
func (q *binHeap) pushSorted(evs []Event) {
	for _, ev := range evs {
		heapPush(&q.h, ev)
	}
}

func (q *binHeap) peek() (float64, bool) {
	if len(q.h) == 0 {
		return 0, false
	}
	return q.h[0].Time, true
}

// ladderBuckets is the rung size: the near-future array spans
// ladderBuckets * width of virtual time ahead of base.
const ladderBuckets = 256

// ladder is the calendar-queue discipline. Invariants:
//
//   - every bucket with index <= cur is empty (already merged into run);
//   - pending counts the events in buckets and over;
//   - run[head:] is sorted by (Time, Src, Seq), and its head is safe to
//     pop iff idx(run[head].Time) <= cur or nothing else is pending —
//     otherwise an unmerged bucket could still hold an earlier event.
type ladder struct {
	base    float64 // virtual time of bucket 0's left edge
	width   float64 // bucket width in virtual seconds
	cur     int     // highest bucket index merged into run; -1 = none
	pending int     // events in buckets + over

	run     []Event // merged events; run[head:] is the sorted pop sequence
	head    int     // next pop index into run
	over    []Event // far-future events beyond the rung, unordered
	buckets [ladderBuckets][]Event

	merges    uint64 // buckets merged into the run
	respreads uint64 // rung rebuilds from the overflow list
}

func newLadder(width float64) *ladder {
	return &ladder{width: width, cur: -1}
}

// idx maps a timestamp to its bucket index: -1 for times at or below the
// merged frontier's origin, ladderBuckets for times beyond the rung. This
// exact computation decides both placement (push) and pop safety (ensure);
// since floor((t-base)/width) is monotone in t, two events never invert.
func (q *ladder) idx(t float64) int {
	r := (t - q.base) / q.width
	if !(r >= 0) { // also catches NaN from inf-inf; treat as already merged
		return -1
	}
	if r >= ladderBuckets {
		return ladderBuckets
	}
	return int(r)
}

func (q *ladder) push(ev Event) {
	switch i := q.idx(ev.Time); {
	case i <= q.cur:
		q.pushRun(ev)
	case i >= ladderBuckets:
		q.over = append(q.over, ev)
		q.pending++
	default:
		b := q.buckets[i]
		if cap(b) == 0 {
			// First touch: skip the 1-2-4-... growth chain of memmoves.
			b = make([]Event, 0, 64)
		}
		q.buckets[i] = append(b, ev)
		q.pending++
	}
}

// pushRun inserts an event whose bucket has already been merged into the
// sorted run: binary search for its slot, shift the tail. This is the slow
// push path — it only triggers for events scheduled at (or clamped to) the
// emitting handler's own timestamp, e.g. RunProcs resume events; banded
// workloads never take it.
func (q *ladder) pushRun(ev Event) {
	lo, hi := q.head, len(q.run)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if evLess(&q.run[mid], &ev) {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	q.run = append(q.run, Event{})
	copy(q.run[lo+1:], q.run[lo:])
	q.run[lo] = ev
}

// pushSorted reinserts a rollback's undone log suffix (sorted, since it was
// recorded in pop order) and rewinds the merge frontier. Reinserting behind
// the frontier one event at a time would take pushRun's O(run) tail memmove
// per event — and, worse, leaving cur at its speculative high-water mark
// would route every emission of the post-rollback re-execution through the
// same memmove (a measured 180x wall blowup at 64k-rank F30 scale). So the
// rollback path rebuilds the rung instead: the live run and the undone
// batch both go back into buckets, cur rewinds to -1, and re-execution's
// pushes are O(1) appends again. Pop order is unchanged — the rung merges
// buckets in index order and sorts each on merge, which reproduces the
// total (Time, Src, Seq) order from any placement.
func (q *ladder) pushSorted(evs []Event) {
	live := q.run[q.head:]
	q.cur = -1
	for i := range live {
		q.place(live[i])
	}
	for i := range evs {
		q.place(evs[i])
	}
	q.run = q.run[:0]
	q.head = 0
}

// place routes an event to its bucket or the overflow without consulting
// the merge frontier (the caller has just rewound it). Times at or below
// the rung origin clamp to bucket 0, which is merged first and sorted in
// isolation, so bucket monotonicity still holds.
func (q *ladder) place(ev Event) {
	i := q.idx(ev.Time)
	if i >= ladderBuckets {
		q.over = append(q.over, ev)
		q.pending++
		return
	}
	if i < 0 {
		i = 0
	}
	b := q.buckets[i]
	if cap(b) == 0 {
		b = make([]Event, 0, 64)
	}
	q.buckets[i] = append(b, ev)
	q.pending++
}

func (q *ladder) len() int { return len(q.run) - q.head + q.pending }

func (q *ladder) peek() (float64, bool) {
	if !q.ensure() {
		return 0, false
	}
	return q.run[q.head].Time, true
}

func (q *ladder) pop() Event {
	q.ensure()
	ev := q.run[q.head]
	q.head++
	if q.head == len(q.run) {
		q.run = q.run[:0]
		q.head = 0
	}
	return ev
}

// ensure advances the rung until the run's head is provably the global
// minimum (or the queue is empty). Each iteration merges one non-empty
// bucket or respreads the overflow, so it terminates: pending strictly
// decreases on merge, and a respread always lands at least one event (the
// overflow minimum) in a bucket for the next iteration.
func (q *ladder) ensure() bool {
	for {
		if q.head < len(q.run) && (q.pending == 0 || q.idx(q.run[q.head].Time) <= q.cur) {
			return true
		}
		if q.pending == 0 {
			return false
		}
		q.advance()
	}
}

// advance merges the next non-empty bucket into the run, or — when the
// rung is exhausted — rebases it on the overflow list's minimum and
// respreads. Merging is concatenation: every event in an unmerged bucket
// follows every event already in the run (bucket monotonicity), so the
// bucket is sorted in isolation and appended.
func (q *ladder) advance() {
	for i := q.cur + 1; i < ladderBuckets; i++ {
		if len(q.buckets[i]) == 0 {
			continue
		}
		q.cur = i
		b := q.buckets[i]
		q.pending -= len(b)
		if q.head == len(q.run) {
			q.run = q.run[:0]
			q.head = 0
		} else if q.head > 32 && q.head > len(q.run)-q.head {
			// Compact the consumed prefix so the run slab stops growing.
			n := copy(q.run, q.run[q.head:])
			q.run = q.run[:n]
			q.head = 0
		}
		start := len(q.run)
		q.run = append(q.run, b...)
		sortEvents(q.run[start:])
		q.buckets[i] = b[:0]
		q.merges++
		return
	}
	// Rung exhausted; everything pending is in the overflow. The engine
	// only reaches here with pending > 0, so over is non-empty.
	q.respread()
}

// respread rebases the rung at the overflow minimum and redistributes the
// overflow into buckets, compacting what still lands beyond the rung back
// into the overflow slab in place.
func (q *ladder) respread() {
	q.respreads++
	min := q.over[0].Time
	for i := 1; i < len(q.over); i++ {
		if q.over[i].Time < min {
			min = q.over[i].Time
		}
	}
	q.base = min
	q.cur = -1
	kept := q.over[:0]
	for _, ev := range q.over {
		if i := q.idx(ev.Time); i < ladderBuckets {
			if i < 0 {
				i = 0 // ev.Time == min lands exactly on the new base
			}
			q.buckets[i] = append(q.buckets[i], ev)
		} else {
			kept = append(kept, ev)
		}
	}
	q.over = kept
}

// sortEvents sorts in place by (Time, Src, Seq): median-of-three quicksort
// recursing into the smaller side, insertion sort below 13 — no interface
// boxing, no closure allocation, deterministic on any input.
func sortEvents(a []Event) {
	for len(a) > 12 {
		p := partitionEvents(a)
		if p < len(a)-p-1 {
			sortEvents(a[:p])
			a = a[p+1:]
		} else {
			sortEvents(a[p+1:])
			a = a[:p]
		}
	}
	for i := 1; i < len(a); i++ {
		ev := a[i]
		j := i
		for j > 0 && evLess(&ev, &a[j-1]) {
			a[j] = a[j-1]
			j--
		}
		a[j] = ev
	}
}

// partitionEvents sorts a[0], a[mid], a[len-1] into place, parks the
// median pivot at len-2, Lomuto-partitions the interior, and returns the
// pivot's final index. Keys are unique, so no equal-pivot pathology.
func partitionEvents(a []Event) int {
	n := len(a)
	m := n / 2
	if evLess(&a[m], &a[0]) {
		a[m], a[0] = a[0], a[m]
	}
	if evLess(&a[n-1], &a[m]) {
		a[n-1], a[m] = a[m], a[n-1]
		if evLess(&a[m], &a[0]) {
			a[m], a[0] = a[0], a[m]
		}
	}
	a[m], a[n-2] = a[n-2], a[m]
	pivot := a[n-2]
	i := 1
	for j := 1; j < n-2; j++ {
		if evLess(&a[j], &pivot) {
			a[i], a[j] = a[j], a[i]
			i++
		}
	}
	a[i], a[n-2] = a[n-2], a[i]
	return i
}
