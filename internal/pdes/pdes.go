// Package pdes is the partitioned, conservatively-synchronized parallel
// discrete-event simulation engine — the million-rank successor to the
// single-heap internal/sim kernel. Ranks are split into contiguous
// partitions, each with its own event heap; partitions advance together
// through fixed virtual-time windows of one lookahead, the lower bound on
// any cross-partition message delay. Within a window every partition
// processes its events independently; events bound for another partition
// are buffered into per-(src,dst) batches and delivered at the next window
// boundary — the paper's W7 aggregation remedy applied to the engine
// itself.
//
// Determinism: every event carries the key (Time, Src, Seq) where Seq is a
// per-source emission counter, so keys are unique and heap order is total.
// A workload whose cross-rank messages all have delay >= the lookahead
// produces byte-identical results at any partition and worker count: such
// an event always crosses a window boundary, so it is delivered before the
// receiving window starts no matter which partition owns the ranks.
// Self-events (Dst == emitting rank) may use any non-negative delay. The
// engine enforces the weaker, partition-dependent half of this contract at
// emission time — a cross-partition event timestamped inside the current
// window is an error, not a silent reordering.
//
// The same Workload runs unchanged on the classic kernel via RunOnSim, and
// sim.Proc-style goroutine-per-rank programs run on this engine via
// RunProcs.
package pdes

import (
	"errors"

	"tenways/internal/obs"
)

// Event is one scheduled occurrence, a plain value: the engine never
// allocates per event — heaps and cross-partition batches are reused slabs
// of these.
type Event struct {
	Time float64 // virtual seconds
	Data float64 // workload payload
	Src  int32   // emitting rank
	Dst  int32   // receiving rank
	Seq  uint32  // per-source emission counter; (Time, Src, Seq) is unique
	Kind int32   // workload-defined discriminator
	Step int32   // workload-defined step/phase counter
}

// Sched is the emission interface handlers see. Both engines implement it:
// the partitioned engine with per-partition heaps and batched
// cross-partition channels, the classic sim.Kernel with one global heap.
type Sched interface {
	// Now returns the timestamp of the event being handled (0 during Init).
	Now() float64
	// Rank returns the rank whose handler is running.
	Rank() int
	// Lookahead returns the engine's window length — the minimum delay a
	// cross-rank message needs for partition-independent results.
	Lookahead() float64
	// At schedules an event of the given kind on rank dst at virtual time
	// t (clamped to Now). The emitting rank becomes the event's Src.
	At(dst int, t float64, kind, step int32, data float64)
}

// Workload is a partition-agnostic event-driven simulation: Init seeds each
// rank's first events (self-events at any time; cross-rank events are
// delivered before the first window), then Handle runs once per event on
// the rank the event targets. Handlers for different ranks run concurrently
// on different partitions and must only interact through Sched.At.
type Workload interface {
	Ranks() int
	Init(s Sched, rank int)
	Handle(s Sched, ev Event)
}

// maxPartitions bounds the P x P cross-partition batch matrix.
const maxPartitions = 256

// Config parameterises a Run.
type Config struct {
	// Partitions splits the ranks into this many contiguous blocks;
	// <= 0 selects 8. Clamped to [1, min(Ranks, 256)].
	Partitions int
	// Workers bounds the goroutines processing partitions; <= 0 selects
	// one per partition. Clamped to [1, Partitions]. Any worker count
	// produces identical results — only wall time changes.
	Workers int
	// Lookahead is the window length in virtual seconds: the lower bound
	// on incoming cross-partition timestamps. Must be positive and no
	// larger than the workload's minimum cross-rank message delay.
	Lookahead float64
	// Obs receives the run's engine metrics (pdes.events, pdes.windows,
	// pdes.window_stalls, pdes.cross_events, pdes.cross_batches); nil
	// keeps the engine silent.
	Obs *obs.Registry
}

// Result summarises a completed run. Only VirtualTime and Events are
// partition-independent; the window and batching counters describe how this
// particular configuration ran and must not leak into deterministic output.
type Result struct {
	VirtualTime  float64 // timestamp of the last processed event
	Events       uint64  // events processed (partition-independent)
	Windows      uint64  // synchronisation windows executed
	Stalls       uint64  // (partition, window) pairs that processed nothing
	CrossEvents  uint64  // events that crossed a partition boundary
	CrossBatches uint64  // non-empty (src, dst) batches delivered
	Partitions   int     // resolved partition count
	Workers      int     // resolved worker count
}

// ErrLookahead reports a non-positive Config.Lookahead.
var ErrLookahead = errors.New("pdes: Config.Lookahead must be positive")
