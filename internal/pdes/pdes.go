// Package pdes is the partitioned, conservatively-synchronized parallel
// discrete-event simulation engine — the million-rank successor to the
// single-heap internal/sim kernel. Ranks are split into contiguous
// partitions, each with its own pending-event queue (a ladder/calendar
// queue by default, a binary heap via Config.Queue); partitions advance
// together through fixed virtual-time windows of one lookahead, the lower
// bound on any cross-partition message delay. Within a window every
// partition processes its events independently; events bound for another
// partition are buffered into per-(src,dst) chunk chains drawn from
// per-partition slab arenas and delivered at the next window boundary —
// the paper's W7 aggregation remedy applied to the engine itself, with
// zero steady-state allocation. Multi-worker runs synchronise windows
// through a padded sense-reversing barrier with an inline GVT min-reduce
// (Config.Barrier selects the old chan hand-off for comparison), and a
// resolved worker count of 1 runs the window loop inline with no
// goroutines at all.
//
// Determinism: every event carries the key (Time, Src, Seq) where Seq is a
// per-source emission counter, so keys are unique and heap order is total.
// A workload whose cross-rank messages all have delay >= the lookahead
// produces byte-identical results at any partition and worker count: such
// an event always crosses a window boundary, so it is delivered before the
// receiving window starts no matter which partition owns the ranks.
// Self-events (Dst == emitting rank) may use any non-negative delay. The
// engine enforces the weaker, partition-dependent half of this contract at
// emission time — a cross-partition event timestamped inside the current
// window is an error, not a silent reordering.
//
// The same Workload runs unchanged on the classic kernel via RunOnSim, and
// sim.Proc-style goroutine-per-rank programs run on this engine via
// RunProcs.
package pdes

import (
	"errors"

	"tenways/internal/obs"
)

// Event is one scheduled occurrence, a plain value: the engine never
// allocates per event — heaps and cross-partition batches are reused slabs
// of these.
type Event struct {
	Time float64 // virtual seconds
	Data float64 // workload payload
	Src  int32   // emitting rank
	Dst  int32   // receiving rank
	Seq  uint32  // per-source emission counter; (Time, Src, Seq) is unique
	Kind int32   // workload-defined discriminator
	Step int32   // workload-defined step/phase counter
}

// Sched is the emission interface handlers see. Both engines implement it:
// the partitioned engine with per-partition heaps and batched
// cross-partition channels, the classic sim.Kernel with one global heap.
type Sched interface {
	// Now returns the timestamp of the event being handled (0 during Init).
	Now() float64
	// Rank returns the rank whose handler is running.
	Rank() int
	// Lookahead returns the engine's window length — the minimum delay a
	// cross-rank message needs for partition-independent results.
	Lookahead() float64
	// At schedules an event of the given kind on rank dst at virtual time
	// t (clamped to Now). The emitting rank becomes the event's Src.
	At(dst int, t float64, kind, step int32, data float64)
}

// Workload is a partition-agnostic event-driven simulation: Init seeds each
// rank's first events (self-events at any time; cross-rank events are
// delivered before the first window), then Handle runs once per event on
// the rank the event targets. Handlers for different ranks run concurrently
// on different partitions and must only interact through Sched.At.
type Workload interface {
	Ranks() int
	Init(s Sched, rank int)
	Handle(s Sched, ev Event)
}

// maxPartitions bounds the P x P cross-partition batch matrix.
const maxPartitions = 256

// QueueKind selects the per-partition pending-event structure. Both kinds
// pop in the identical (Time, Src, Seq) total order, so results are
// byte-identical either way — only speed changes.
type QueueKind int

const (
	// QueueLadder (the default) is the ladder/calendar queue: near-future
	// bucket ring + far-future overflow, O(1) amortized push and pops
	// paying only the per-bucket population.
	QueueLadder QueueKind = iota
	// QueueHeap is the classic binary heap: O(log n) push and pop at the
	// full partition depth — the wasteful baseline F29 tables.
	QueueHeap
)

func (k QueueKind) String() string {
	if k == QueueHeap {
		return "heap"
	}
	return "ladder"
}

// BarrierKind selects the per-window worker synchronisation for
// multi-worker runs. Irrelevant to results (and skipped entirely when the
// resolved worker count is 1 — the window loop runs inline).
type BarrierKind int

const (
	// BarrierSense (the default) is a padded sense-reversing barrier with
	// the GVT min-reduce inlined into the coordinator: one atomic publish
	// and one bounded spin per worker per window.
	BarrierSense BarrierKind = iota
	// BarrierChan is the chan-broadcast + report-channel hand-off: two
	// channel operations per worker per window — the wasteful baseline
	// F29 tables.
	BarrierChan
)

func (k BarrierKind) String() string {
	if k == BarrierChan {
		return "chan"
	}
	return "sense"
}

// Config parameterises a Run.
type Config struct {
	// Partitions splits the ranks into this many contiguous blocks;
	// <= 0 selects 8. Clamped to [1, min(Ranks, 256)].
	Partitions int
	// Workers bounds the goroutines processing partitions; <= 0 selects
	// min(Partitions, GOMAXPROCS) — more workers than cores only adds
	// scheduling churn. A resolved count of 1 runs the window loop inline
	// with no goroutines or barrier at all. Clamped to [1, Partitions].
	// Any worker count produces identical results — only wall time
	// changes.
	Workers int
	// Lookahead is the window length in virtual seconds: the lower bound
	// on incoming cross-partition timestamps. Must be positive and no
	// larger than the workload's minimum cross-rank message delay.
	Lookahead float64
	// Queue selects the pending-event discipline; the zero value is the
	// remedied QueueLadder.
	Queue QueueKind
	// BucketWidth is the ladder queue's bucket width in virtual seconds;
	// <= 0 derives Lookahead/4. Ignored under QueueHeap. Tunable
	// F29-bucket searches this knob against the engine cost model.
	BucketWidth float64
	// Barrier selects the multi-worker window hand-off; the zero value is
	// the remedied BarrierSense.
	Barrier BarrierKind
	// Obs receives the run's engine metrics (pdes.events, pdes.windows,
	// pdes.window_stalls, pdes.cross_events, pdes.cross_batches,
	// pdes.chunk_allocs, pdes.ladder_respreads); nil keeps the engine
	// silent.
	Obs *obs.Registry
}

// Result summarises a completed run. Only VirtualTime and Events are
// partition-independent; the window and batching counters describe how this
// particular configuration ran and must not leak into deterministic output.
type Result struct {
	VirtualTime  float64 // timestamp of the last processed event
	Events       uint64  // events processed (partition-independent)
	Windows      uint64  // synchronisation windows executed
	Stalls       uint64  // (partition, window) pairs that processed nothing
	CrossEvents  uint64  // events that crossed a partition boundary
	CrossBatches uint64  // non-empty (src, dst) batches delivered
	Partitions   int     // resolved partition count
	Workers      int     // resolved worker count
}

// ErrLookahead reports a non-positive Config.Lookahead.
var ErrLookahead = errors.New("pdes: Config.Lookahead must be positive")
