// Package pdes is the partitioned, conservatively-synchronized parallel
// discrete-event simulation engine — the million-rank successor to the
// single-heap internal/sim kernel. Ranks are split into contiguous
// partitions, each with its own pending-event queue (a ladder/calendar
// queue by default, a binary heap via Config.Queue); partitions advance
// together through fixed virtual-time windows of one lookahead, the lower
// bound on any cross-partition message delay. Within a window every
// partition processes its events independently; events bound for another
// partition are buffered into per-(src,dst) chunk chains drawn from
// per-partition slab arenas and delivered at the next window boundary —
// the paper's W7 aggregation remedy applied to the engine itself, with
// zero steady-state allocation. Multi-worker runs synchronise windows
// through a padded sense-reversing barrier with an inline GVT min-reduce
// (Config.Barrier selects the old chan hand-off for comparison), and a
// resolved worker count of 1 runs the window loop inline with no
// goroutines at all.
//
// Determinism: every event carries the key (Time, Src, Seq) where Seq is a
// per-source emission counter, so keys are unique and heap order is total.
// A workload whose cross-rank messages all have delay >= the lookahead
// produces byte-identical results at any partition and worker count: such
// an event always crosses a window boundary, so it is delivered before the
// receiving window starts no matter which partition owns the ranks.
// Self-events (Dst == emitting rank) may use any non-negative delay. The
// engine enforces the weaker, partition-dependent half of this contract at
// emission time — a cross-partition event timestamped inside the current
// window is an error, not a silent reordering.
//
// The same Workload runs unchanged on the classic kernel via RunOnSim, and
// sim.Proc-style goroutine-per-rank programs run on this engine via
// RunProcs.
package pdes

import (
	"errors"
	"fmt"

	"tenways/internal/obs"
)

// Event is one scheduled occurrence, a plain value: the engine never
// allocates per event — heaps and cross-partition batches are reused slabs
// of these.
type Event struct {
	Time float64 // virtual seconds
	Data float64 // workload payload
	Src  int32   // emitting rank
	Dst  int32   // receiving rank
	Seq  uint32  // per-source emission counter; (Time, Src, Seq) is unique
	Kind int32   // workload-defined discriminator
	Step int32   // workload-defined step/phase counter
}

// Sched is the emission interface handlers see. Both engines implement it:
// the partitioned engine with per-partition heaps and batched
// cross-partition channels, the classic sim.Kernel with one global heap.
type Sched interface {
	// Now returns the timestamp of the event being handled (0 during Init).
	Now() float64
	// Rank returns the rank whose handler is running.
	Rank() int
	// Lookahead returns the engine's window length — the minimum delay a
	// cross-rank message needs for partition-independent results.
	Lookahead() float64
	// At schedules an event of the given kind on rank dst at virtual time
	// t (clamped to Now). The emitting rank becomes the event's Src.
	At(dst int, t float64, kind, step int32, data float64)
}

// Workload is a partition-agnostic event-driven simulation: Init seeds each
// rank's first events (self-events at any time; cross-rank events are
// delivered before the first window), then Handle runs once per event on
// the rank the event targets. Handlers for different ranks run concurrently
// on different partitions and must only interact through Sched.At.
type Workload interface {
	Ranks() int
	Init(s Sched, rank int)
	Handle(s Sched, ev Event)
}

// StatefulWorkload is the optional capability a Workload needs before the
// optimistic engine will run it: per-rank state save and restore, so
// speculated events can be rolled back. The contract mirrors Workload's
// concurrency rule — rank r's state is only read and written by handlers
// running on rank r, so Snapshot(r) taken between two of r's events fully
// captures everything a replay of the later one observes. Restore must
// accept exactly what Snapshot returned. Stateless workloads may return
// nil and ignore Restore. Workloads without this interface still run
// conservatively; Run under SyncOptimistic rejects them with
// ErrNotStateful.
type StatefulWorkload interface {
	Workload
	// Snapshot returns an owned copy of rank's mutable state.
	Snapshot(rank int) any
	// Restore rewinds rank's mutable state to a prior Snapshot value.
	Restore(rank int, snap any)
}

// maxPartitions bounds the P x P cross-partition batch matrix.
const maxPartitions = 256

// Config parameterises a Run.
type Config struct {
	// Partitions splits the ranks into this many contiguous blocks;
	// <= 0 selects 8. Clamped to [1, min(Ranks, 256)].
	Partitions int
	// Workers bounds the goroutines processing partitions; <= 0 selects
	// min(Partitions, GOMAXPROCS) — more workers than cores only adds
	// scheduling churn. A resolved count of 1 runs the window loop inline
	// with no goroutines or barrier at all. Clamped to [1, Partitions].
	// Any worker count produces identical results — only wall time
	// changes.
	Workers int
	// Lookahead is the window length in virtual seconds: the lower bound
	// on incoming cross-partition timestamps. Must be positive and no
	// larger than the workload's minimum cross-rank message delay.
	Lookahead float64
	// Queue selects the pending-event discipline; the zero value is the
	// remedied QueueLadder.
	Queue QueueKind
	// BucketWidth is the ladder queue's bucket width in virtual seconds;
	// <= 0 derives Lookahead/4. Ignored under QueueHeap. Tunable
	// F29-bucket searches this knob against the engine cost model.
	BucketWidth float64
	// Barrier selects the multi-worker window hand-off; the zero value is
	// the remedied BarrierSense.
	Barrier BarrierKind
	// Sync selects the synchronisation discipline; the zero value is
	// SyncConservative. SyncOptimistic requires a StatefulWorkload and
	// produces byte-identical committed results — see Result.Executed for
	// what the speculation cost.
	Sync SyncKind
	// CheckpointInterval is the number of speculatively processed events
	// between state checkpoints under SyncOptimistic; <= 0 selects 64.
	// Small intervals pay snapshot overhead, large ones pay longer
	// coast-forward replays at rollback. Tunable F30-interval searches
	// this knob against the engine cost model. Setting it under
	// SyncConservative is a Validate error.
	CheckpointInterval int
	// Obs receives the run's engine metrics (pdes.events, pdes.windows,
	// pdes.window_stalls, pdes.cross_events, pdes.cross_batches,
	// pdes.chunk_allocs, pdes.ladder_respreads, and under SyncOptimistic
	// the pdes.tw_* speculation counters); nil keeps the engine silent.
	Obs *obs.Registry
}

// Validate checks the configuration without resolving defaults (Run still
// resolves Partitions/Workers/BucketWidth/CheckpointInterval zero values).
// Every failure wraps ErrConfig plus one of the specific sentinels, so
// callers can branch with errors.Is at either granularity.
func (c Config) Validate() error {
	if c.Lookahead <= 0 {
		return ErrLookahead
	}
	if c.Partitions > maxPartitions {
		return fmt.Errorf("%w: Partitions %d exceeds the %d-partition batch matrix", ErrPartitions, c.Partitions, maxPartitions)
	}
	if c.Queue != QueueLadder && c.Queue != QueueHeap {
		return fmt.Errorf("%w: queue kind %d out of range", ErrConfig, int(c.Queue))
	}
	if c.Barrier != BarrierSense && c.Barrier != BarrierChan {
		return fmt.Errorf("%w: barrier kind %d out of range", ErrConfig, int(c.Barrier))
	}
	if c.Sync != SyncConservative && c.Sync != SyncOptimistic {
		return fmt.Errorf("%w: sync kind %d out of range", ErrSync, int(c.Sync))
	}
	if c.BucketWidth > 0 && c.Queue == QueueHeap {
		return fmt.Errorf("%w: BucketWidth %g is a ladder knob, meaningless under QueueHeap", ErrBucketWidth, c.BucketWidth)
	}
	if c.CheckpointInterval < 0 {
		return fmt.Errorf("%w: CheckpointInterval %d must be non-negative", ErrCheckpoint, c.CheckpointInterval)
	}
	if c.CheckpointInterval > 0 && c.Sync != SyncOptimistic {
		return fmt.Errorf("%w: CheckpointInterval %d is an optimistic knob, meaningless under %s sync", ErrCheckpoint, c.CheckpointInterval, c.Sync)
	}
	return nil
}

// Result summarises a completed run. Only VirtualTime and Events are
// partition-independent; the window and batching counters describe how this
// particular configuration ran and must not leak into deterministic output.
type Result struct {
	VirtualTime  float64 // timestamp of the last processed event
	Events       uint64  // events committed (partition-independent)
	Windows      uint64  // synchronisation windows executed
	Stalls       uint64  // (partition, window) pairs that processed nothing
	CrossEvents  uint64  // events that crossed a partition boundary
	CrossBatches uint64  // non-empty (src, dst) batches delivered
	Partitions   int     // resolved partition count
	Workers      int     // resolved worker count

	// Speculation accounting, zero under SyncConservative (where
	// Executed == Events by construction).
	Executed     uint64 // handler invocations, including rolled-back and replayed work
	Rollbacks    uint64 // rollback episodes across all partitions
	RolledBack   uint64 // committed-log entries undone by rollbacks
	AntiMessages uint64 // cross-partition cancellations sent
	Checkpoints  uint64 // state-checkpoint segments opened
}

// Efficiency is the committed-event efficiency: events the answer needed
// divided by events the machine executed. 1.0 under SyncConservative;
// below 1.0 exactly when speculation wasted work.
func (r Result) Efficiency() float64 {
	if r.Executed == 0 {
		return 1
	}
	return float64(r.Events) / float64(r.Executed)
}

// ErrConfig is the sentinel every configuration error wraps: Validate
// failures, kind-parse failures, and the optimistic engine's capability
// rejection all satisfy errors.Is(err, ErrConfig). The daemon maps it to
// HTTP 400.
var ErrConfig = errors.New("pdes: invalid config")

var (
	// ErrLookahead reports a non-positive Config.Lookahead.
	ErrLookahead = fmt.Errorf("%w: Config.Lookahead must be positive", ErrConfig)
	// ErrPartitions reports Config.Partitions beyond maxPartitions —
	// previously clamped silently, now a typed error.
	ErrPartitions = fmt.Errorf("%w: too many partitions", ErrConfig)
	// ErrBucketWidth reports Config.BucketWidth set under QueueHeap.
	ErrBucketWidth = fmt.Errorf("%w: bucket width", ErrConfig)
	// ErrCheckpoint reports an unusable Config.CheckpointInterval.
	ErrCheckpoint = fmt.Errorf("%w: checkpoint interval", ErrConfig)
	// ErrSync reports an out-of-range Config.Sync.
	ErrSync = fmt.Errorf("%w: sync kind", ErrConfig)
	// ErrNotStateful reports a SyncOptimistic run over a workload that
	// does not implement StatefulWorkload, so nothing could be rolled
	// back.
	ErrNotStateful = fmt.Errorf("%w: workload cannot roll back", ErrConfig)
)
