package pdes

import (
	"fmt"

	"tenways/internal/stats"
)

// IdleWave is the cluster-scale idle-wave workload (Afzal/Hager/Wellein,
// arXiv:2103.03175): N ranks run a blocking halo chain — compute for
// Compute seconds, send halos to the ranks Offsets away on both sides, and
// block until the same-step halos from every neighbour arrive. One
// injected delay spike on rank 0 at step 0 launches an idle wave that
// propagates up the chain at the analytic speed
//
//	v = d_max / (Compute + delta_max)  ranks per second,
//
// one longest-offset hop per quiet step cadence. The workload records each
// rank's first departure from the quiet lockstep schedule, so a linear fit
// of (rank, arrival time) measures the wave speed the model predicts.
//
// Every halo between distinct ranks uses the per-offset delay Delays[i],
// so the minimum delay is a valid engine lookahead and results are
// byte-identical at any partition count.
type IdleWave struct {
	N       int
	Steps   int
	Compute float64   // per-step compute seconds (c)
	Spike   float64   // extra compute on rank 0 at step 0
	Offsets []int     // neighbour offsets (positive, ascending)
	Delays  []float64 // per-offset halo delay (delta), parallel to Offsets

	// Per-rank state, allocated by NewIdleWave. A rank at step s has
	// received recv[r] of its step-s halos and recvN[r] of its step-(s+1)
	// halos; blocking sync bounds any neighbour's lead to one step.
	step   []int32
	recv   []int32
	recvN  []int32
	done   []bool
	arrive []float64 // first perturbed step-start time; -1 = quiet

	maxDelay float64
	thresh   float64
}

// Event kinds: a rank's own compute completion, and a neighbour halo.
const (
	kindDone int32 = 1
	kindHalo int32 = 2
)

// NewIdleWave validates the parameters and allocates the per-rank state.
func NewIdleWave(n, steps int, compute, spike float64, offsets []int, delays []float64) (*IdleWave, error) {
	if n < 2 || steps < 1 {
		return nil, fmt.Errorf("pdes: idle wave needs >= 2 ranks and >= 1 step, got %d/%d", n, steps)
	}
	if compute <= 0 {
		return nil, fmt.Errorf("pdes: idle wave compute must be positive, got %g", compute)
	}
	if len(offsets) == 0 || len(offsets) != len(delays) {
		return nil, fmt.Errorf("pdes: idle wave needs matching offsets and delays, got %d/%d", len(offsets), len(delays))
	}
	w := &IdleWave{
		N: n, Steps: steps, Compute: compute, Spike: spike,
		Offsets: append([]int(nil), offsets...),
		Delays:  append([]float64(nil), delays...),
		step:    make([]int32, n),
		recv:    make([]int32, n),
		recvN:   make([]int32, n),
		done:    make([]bool, n),
		arrive:  make([]float64, n),
	}
	prev := 0
	for i, d := range offsets {
		if d <= prev {
			return nil, fmt.Errorf("pdes: idle wave offsets must be positive and ascending, got %v", offsets)
		}
		if 2*d >= n {
			return nil, fmt.Errorf("pdes: idle wave offset %d too large for %d ranks", d, n)
		}
		if delays[i] <= 0 {
			return nil, fmt.Errorf("pdes: idle wave delay for offset %d must be positive, got %g", d, delays[i])
		}
		prev = d
		if delays[i] > w.maxDelay {
			w.maxDelay = delays[i]
		}
	}
	for r := range w.arrive {
		w.arrive[r] = -1
	}
	w.thresh = compute / 10
	return w, nil
}

// MinDelay returns the smallest halo delay — the widest valid lookahead.
func (w *IdleWave) MinDelay() float64 {
	m := w.Delays[0]
	for _, d := range w.Delays[1:] {
		if d < m {
			m = d
		}
	}
	return m
}

// AnalyticSpeed returns the model's wave speed d_max/(c+delta_max) in
// ranks per virtual second.
func (w *IdleWave) AnalyticSpeed() float64 {
	dmax := w.Offsets[len(w.Offsets)-1]
	return float64(dmax) / (w.Compute + w.maxDelay)
}

// cadence is the quiet lockstep step length: every rank starts step s at
// exactly s*cadence (each rank has at least one neighbour per offset in
// both validated regimes, so the max incoming delay is uniform).
func (w *IdleWave) cadence() float64 { return w.Compute + w.maxDelay }

func (w *IdleWave) Ranks() int { return w.N }

func (w *IdleWave) Init(s Sched, rank int) {
	c := w.Compute
	if rank == 0 {
		c += w.Spike
	}
	s.At(rank, c, kindDone, 0, 0)
}

func (w *IdleWave) Handle(s Sched, ev Event) {
	r := ev.Dst
	switch ev.Kind {
	case kindDone:
		// Compute for step ev.Step finished: ship the halos, then see if
		// the neighbours' halos already cleared the sync.
		for i, d := range w.Offsets {
			t := ev.Time + w.Delays[i]
			if lo := int(r) - d; lo >= 0 {
				s.At(lo, t, kindHalo, ev.Step, 0)
			}
			if hi := int(r) + d; hi < w.N {
				s.At(hi, t, kindHalo, ev.Step, 0)
			}
		}
		w.done[r] = true
		w.tryAdvance(s, r, ev.Time)
	case kindHalo:
		switch ev.Step {
		case w.step[r]:
			w.recv[r]++
			w.tryAdvance(s, r, ev.Time)
		case w.step[r] + 1:
			w.recvN[r]++
		default:
			panic(fmt.Sprintf("pdes: rank %d at step %d got halo for step %d", r, w.step[r], ev.Step))
		}
	default:
		panic(fmt.Sprintf("pdes: idle wave got foreign event kind %d", ev.Kind))
	}
}

// idleWaveState is one rank's complete mutable state, the StatefulWorkload
// snapshot payload. A plain value: Snapshot copies it out, Restore copies
// it back.
type idleWaveState struct {
	step   int32
	recv   int32
	recvN  int32
	done   bool
	arrive float64
}

// Snapshot implements StatefulWorkload: rank state is only touched by the
// rank's own handlers, so a value copy between two of its events captures
// everything a replay observes.
func (w *IdleWave) Snapshot(rank int) any {
	return idleWaveState{
		step:   w.step[rank],
		recv:   w.recv[rank],
		recvN:  w.recvN[rank],
		done:   w.done[rank],
		arrive: w.arrive[rank],
	}
}

// Restore implements StatefulWorkload.
func (w *IdleWave) Restore(rank int, snap any) {
	st := snap.(idleWaveState)
	w.step[rank] = st.step
	w.recv[rank] = st.recv
	w.recvN[rank] = st.recvN
	w.done[rank] = st.done
	w.arrive[rank] = st.arrive
}

// degree counts the rank's neighbours on the non-periodic chain.
func (w *IdleWave) degree(r int32) int32 {
	deg := int32(0)
	for _, d := range w.Offsets {
		if int(r)-d >= 0 {
			deg++
		}
		if int(r)+d < w.N {
			deg++
		}
	}
	return deg
}

// tryAdvance enters the next step once the rank has both finished its
// compute and received every same-step halo. The entry time is the
// timestamp of whichever event completed the condition — exactly the
// blocking-sync max.
func (w *IdleWave) tryAdvance(s Sched, r int32, now float64) {
	if !w.done[r] || w.recv[r] != w.degree(r) {
		return
	}
	next := w.step[r] + 1
	w.step[r] = next
	w.recv[r] = w.recvN[r]
	w.recvN[r] = 0
	w.done[r] = false
	if w.arrive[r] < 0 && now > float64(next)*w.cadence()+w.thresh {
		w.arrive[r] = now
	}
	if int(next) >= w.Steps {
		return // campaign over for this rank; stray halos cannot arrive
	}
	s.At(int(r), now+w.Compute, kindDone, next, 0)
}

// WaveSpeed fits arrival time against rank over the perturbed ranks and
// returns the measured speed (ranks per virtual second), the fit, and the
// number of perturbed ranks. With a spike on rank 0 the wave reaches
// roughly d_max ranks per step, so only the first Steps*d_max ranks are
// perturbed — the rest of the chain ran quiet, which is the point of
// running it at scale.
func (w *IdleWave) WaveSpeed() (speed float64, fit stats.Fit, perturbed int, err error) {
	xs := make([]float64, 0, w.N)
	ys := make([]float64, 0, w.N)
	for r, t := range w.arrive {
		if t >= 0 {
			xs = append(xs, float64(r))
			ys = append(ys, t)
		}
	}
	if len(xs) < 3 {
		return 0, stats.Fit{}, len(xs), fmt.Errorf("pdes: idle wave perturbed only %d ranks; need >= 3 for a fit (raise Spike or Steps)", len(xs))
	}
	fit, err = stats.LinearFit(xs, ys)
	if err != nil {
		return 0, fit, len(xs), err
	}
	if fit.Slope <= 0 {
		return 0, fit, len(xs), fmt.Errorf("pdes: idle wave fit slope %g not positive", fit.Slope)
	}
	return 1 / fit.Slope, fit, len(xs), nil
}

// Arrival returns rank r's recorded wave-arrival time, or -1 if the wave
// never reached it.
func (w *IdleWave) Arrival(r int) float64 { return w.arrive[r] }
