package pdes

import (
	"math"
	"sync"
	"testing"
)

// mix64 is splitmix64 — the tests' only randomness source, fully
// deterministic from its seed.
func mix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// TestLadderMatchesHeapOnRandomStream drives both disciplines through the
// same interleaved push/pop stream — pushes never travel backwards past the
// last pop, the engine's usage pattern — and demands identical pop
// sequences. The width sweep forces every ladder path: tiny widths respread
// constantly, huge widths funnel everything through one bucket.
func TestLadderMatchesHeapOnRandomStream(t *testing.T) {
	for _, width := range []float64{1e-8, 1e-7, 1e-6, 5e-6, 1e-3} {
		h := &binHeap{}
		l := newLadder(width)
		g := uint64(0xfeed)
		now := 0.0
		live := 0
		for i := 0; i < 20000; i++ {
			g = mix64(g)
			if live > 0 && g%3 == 0 {
				th, okh := h.peek()
				tl, okl := l.peek()
				if okh != okl || th != tl {
					t.Fatalf("width=%g step %d: peek (%g,%v) heap vs (%g,%v) ladder", width, i, th, okh, tl, okl)
				}
				evh, evl := h.pop(), l.pop()
				if evh != evl {
					t.Fatalf("width=%g step %d: pop %+v heap vs %+v ladder", width, i, evh, evl)
				}
				now = evh.Time
				live--
			} else {
				g = mix64(g)
				// Coarse 16-bit time grid so exact ties exercise the
				// (Time, Src, Seq) tie-break.
				dt := float64(g%(1<<16)) / float64(1<<16) * 10e-6
				ev := Event{Time: now + dt, Src: int32(g % 64), Seq: uint32(i)}
				h.push(ev)
				l.push(ev)
				live++
			}
			if h.len() != l.len() {
				t.Fatalf("width=%g step %d: len %d heap vs %d ladder", width, i, h.len(), l.len())
			}
		}
		for h.len() > 0 {
			evh, evl := h.pop(), l.pop()
			if evh != evl {
				t.Fatalf("width=%g drain: pop %+v heap vs %+v ladder", width, evh, evl)
			}
		}
		if l.len() != 0 {
			t.Fatalf("width=%g: ladder still holds %d events after drain", width, l.len())
		}
	}
}

// randWorkload is a seeded event storm for the queue-equivalence property
// test: every decision — fan-out, destinations, delays, payloads — derives
// from a hash chain over the handled event's identity and the handling
// rank's running trace, never from shared state, so any two runs that
// handle each rank's events in the same order produce identical traces.
// Self events use sub-lookahead (even zero) delays to exercise the
// ladder's sorted-run insertion path; cross-rank events use delays in
// [lookahead, 3*lookahead).
type randWorkload struct {
	n       int
	seed    uint64
	look    float64
	horizon float64
	trace   []uint64 // per-rank order-sensitive chain, written only by the owner
}

func newRandWorkload(n int, seed uint64, look float64) *randWorkload {
	return &randWorkload{n: n, seed: seed, look: look, horizon: 40 * look, trace: make([]uint64, n)}
}

func (w *randWorkload) Ranks() int { return w.n }

func (w *randWorkload) Init(s Sched, rank int) {
	h := mix64(w.seed ^ uint64(rank)*0x9e3779b97f4a7c15)
	for i := uint64(0); i <= h%2; i++ {
		h = mix64(h)
		t := float64(h%(1<<20)) / float64(1<<20) * 8 * w.look
		s.At(rank, t, 1, int32(i), float64(h%97))
	}
}

func (w *randWorkload) Handle(s Sched, ev Event) {
	r := int(ev.Dst)
	h := w.trace[r]
	h = mix64(h ^ math.Float64bits(ev.Time))
	h = mix64(h ^ uint64(uint32(ev.Src))<<32 ^ uint64(ev.Seq))
	h = mix64(h ^ uint64(uint32(ev.Kind))<<32 ^ uint64(uint32(ev.Step)))
	h = mix64(h ^ math.Float64bits(ev.Data))
	w.trace[r] = h
	if ev.Time >= w.horizon {
		return
	}
	g := mix64(h)
	for i := uint64(0); i < g%3; i++ {
		g = mix64(g)
		u := float64(g%(1<<20)) / float64(1<<20)
		if g&(1<<21) == 0 {
			s.At(r, ev.Time+u*0.7*w.look, 2, int32(i), float64(g%251))
		} else {
			g = mix64(g)
			dst := int(g % uint64(w.n))
			s.At(dst, ev.Time+w.look+u*2*w.look, 3, int32(i), float64(g%251))
		}
	}
}

// Snapshot/Restore make randWorkload a StatefulWorkload so the property
// grid covers the optimistic engine: the per-rank trace chain is the whole
// mutable state, and it doubles as the sharpest possible rollback probe —
// one event replayed, skipped, or reordered changes every subsequent hash.
func (w *randWorkload) Snapshot(rank int) any      { return w.trace[rank] }
func (w *randWorkload) Restore(rank int, snap any) { w.trace[rank] = snap.(uint64) }

// TestQueueEquivalenceProperty is the tentpole's safety net: seeded random
// workloads through every engine configuration — both sync disciplines,
// both queue disciplines, extreme bucket widths and checkpoint intervals,
// both barriers, partition counts that do not divide the rank count — must
// produce byte-identical results and per-rank trace chains.
func TestQueueEquivalenceProperty(t *testing.T) {
	const n = 96
	const look = 2e-6
	configs := []Config{
		{Partitions: 1, Workers: 1, Queue: QueueHeap},
		{Partitions: 1, Workers: 1, Queue: QueueLadder},
		{Partitions: 7, Workers: 1, Queue: QueueHeap},
		{Partitions: 7, Workers: 3, Queue: QueueLadder},
		{Partitions: 16, Workers: 4, Queue: QueueLadder, BucketWidth: look / 64},  // constant respreads
		{Partitions: 16, Workers: 4, Queue: QueueLadder, BucketWidth: look * 1e4}, // one giant bucket
		{Partitions: 16, Workers: 4, Queue: QueueHeap, Barrier: BarrierChan},
		{Partitions: 16, Workers: 4, Queue: QueueLadder, Barrier: BarrierSense},
		{Partitions: 1, Workers: 1, Queue: QueueLadder, Sync: SyncOptimistic},
		{Partitions: 7, Workers: 1, Queue: QueueHeap, Sync: SyncOptimistic},
		{Partitions: 7, Workers: 3, Queue: QueueLadder, Sync: SyncOptimistic, CheckpointInterval: 1}, // checkpoint every event
		{Partitions: 16, Workers: 4, Queue: QueueLadder, Sync: SyncOptimistic, CheckpointInterval: 7},
		{Partitions: 16, Workers: 4, Queue: QueueHeap, Sync: SyncOptimistic, Barrier: BarrierChan},
		{Partitions: 16, Workers: 4, Queue: QueueLadder, Sync: SyncOptimistic, Barrier: BarrierSense, BucketWidth: look / 64},
	}
	var antis uint64
	for _, seed := range []uint64{1, 0xabcdef, 77777} {
		base := newRandWorkload(n, seed, look)
		bres, err := Run(base, Config{Partitions: 1, Workers: 1, Queue: QueueHeap, Lookahead: look})
		if err != nil {
			t.Fatalf("seed %d baseline: %v", seed, err)
		}
		if bres.Events == 0 {
			t.Fatalf("seed %d: baseline produced no events", seed)
		}
		for ci, cfg := range configs {
			w := newRandWorkload(n, seed, look)
			cfg.Lookahead = look
			res, err := Run(w, cfg)
			if err != nil {
				t.Fatalf("seed %d config %d (%+v): %v", seed, ci, cfg, err)
			}
			antis += res.AntiMessages
			if res.Events != bres.Events || res.VirtualTime != bres.VirtualTime {
				t.Errorf("seed %d config %d (queue=%v parts=%d): events %d / vt %g, baseline %d / %g",
					seed, ci, cfg.Queue, cfg.Partitions, res.Events, res.VirtualTime, bres.Events, bres.VirtualTime)
			}
			for r := 0; r < n; r++ {
				if w.trace[r] != base.trace[r] {
					t.Fatalf("seed %d config %d (queue=%v parts=%d workers=%d width=%g): rank %d trace %x, baseline %x",
						seed, ci, cfg.Queue, cfg.Partitions, cfg.Workers, cfg.BucketWidth, r, w.trace[r], base.trace[r])
				}
			}
		}
	}
	// The random workload's multi-partition fan-out makes rollbacks undo
	// cross-emitting handlers, so the anti-message path must have fired —
	// the byte-identical traces above prove annihilation got every stale
	// copy. (The idle wave never exercises it: its stragglers always land
	// after the done cluster they belong to, so only halo receipts unwind.)
	if antis == 0 {
		t.Error("optimistic configs sent no anti-messages; cancellation path untested")
	}
}

// TestWindowLoopSteadyStateZeroAlloc is the slab-arena acceptance gate:
// once the ladder rungs, sorted runs, and chunk free lists reach their
// high-water marks, the window loop must not allocate at all — across
// bucket merges, overflow respreads, and cross-partition chunk recycling.
func TestWindowLoopSteadyStateZeroAlloc(t *testing.T) {
	w := mustWave(t, 512, 400, 50e-6, 0, []int{1, 4}, []float64{2e-6, 2.5e-6})
	cfg := Config{Partitions: 4, Workers: 1, Lookahead: w.MinDelay()}
	e := newEngine(w, w.Ranks(), cfg.Partitions, cfg)
	if err := e.seed(); err != nil {
		t.Fatal(err)
	}
	gmin := e.initialMin()
	failed := false
	step := func(k int) {
		for i := 0; i < k && !failed && !math.IsInf(gmin, 1); i++ {
			gmin, failed = e.stepWindow(gmin)
		}
	}
	// Warm past the first overflow respreads (one every ~40 windows at the
	// default lookahead/4 bucket width) so every slab is at high water.
	step(120)
	if failed {
		t.Fatal(e.firstError())
	}
	if math.IsInf(gmin, 1) {
		t.Fatal("workload drained during warmup; increase steps")
	}
	if avg := testing.AllocsPerRun(10, func() { step(10) }); avg != 0 {
		t.Fatalf("steady-state window loop allocates: %g allocs per 10 windows, want 0", avg)
	}
	if failed {
		t.Fatal(e.firstError())
	}
}

// TestSenseBarrierProtocol drives the barrier directly: three windows with
// a min-reduce, a failure flag on the last, then shutdown.
func TestSenseBarrierProtocol(t *testing.T) {
	const nw = 4
	bar := newSenseBarrier(nw)
	var wg sync.WaitGroup
	for wi := 0; wi < nw; wi++ {
		wg.Add(1)
		go func(wi int) {
			defer wg.Done()
			for ep := uint32(1); ; ep++ {
				wend, ok := bar.await(ep)
				if !ok {
					return
				}
				bar.publish(wi, ep, wend+float64(wi), wi == 2 && ep == 3)
			}
		}(wi)
	}
	for ep := uint32(1); ep <= 3; ep++ {
		bar.issue(ep, float64(ep)*10)
		gmin, failed := bar.collect(ep)
		if want := float64(ep) * 10; gmin != want {
			t.Errorf("epoch %d: min-reduce %g, want %g", ep, gmin, want)
		}
		if failed != (ep == 3) {
			t.Errorf("epoch %d: failed=%v, want %v", ep, failed, ep == 3)
		}
	}
	bar.shutdown(4)
	wg.Wait()
}
