# Build and verification tiers. Tier-1 is the gate every change must pass
# (see ROADMAP.md); race adds vet and the race detector over the measured
# plane's real goroutines (sched.Pool, chaos.HostJitter).

GO ?= go

.PHONY: all build test lint fix fix-clean race bench bench-json bench-diff quick smoke clean

all: test

build:
	$(GO) build ./...

# Tier-1 verify: must stay green.
test: build
	$(GO) test ./...

# Waste-mode static analysis (internal/lint via cmd/wastevet): determinism
# guards plus the W1/W5/W7/W8/W9/W10 source-level mirrors. Fails on any
# unsuppressed finding; LINT_JSON=<path> additionally writes the machine-
# readable findings report.
lint:
	$(GO) run ./cmd/wastevet $(if $(LINT_JSON),-json $(LINT_JSON)) ./...

# Apply every suggested fix in place (fix), or assert that doing so changes
# nothing (fix-clean — the CI gate: a tree where wastevet -fix would edit
# files means a mechanical cleanup was committed half-done).
fix:
	$(GO) run ./cmd/wastevet -fix ./...

fix-clean: fix
	git diff --exit-code

# Tier-2 verify: static analysis + race detector. The pdes package runs
# again under its non-default disciplines (binary-heap queue +
# chan-broadcast barrier, then optimistic Time-Warp sync) so every engine
# hot path stays race-clean and result-identical.
race: lint
	$(GO) vet ./...
	$(GO) test -race ./...
	$(GO) test -race ./internal/pdes -args -pdes-queue=heap -pdes-barrier=chan
	$(GO) test -race ./internal/pdes -args -pdes-sync=optimistic

# Full benchmark suite (use BENCH=<regex> to narrow).
BENCH ?= .
bench:
	$(GO) test -bench '$(BENCH)' -benchmem ./...

# Benchmarks plus a quick parallel lab run, merged into one dated JSON
# report. cmd/benchjson keeps each raw benchmark line in the record, so
# benchstat input can be recovered with
#   jq -r '.benchmarks[].raw' BENCH_<date>.json
# and the full lab report (tables, figures, per-experiment metrics) rides
# along under ".lab".
bench-json:
	$(GO) run ./cmd/wastelab -run all -quick -parallel 4 -json LAB_$$(date +%Y-%m-%d).json > /dev/null
	$(GO) test -bench '$(BENCH)' -benchmem ./... | $(GO) run ./cmd/benchjson -lab LAB_$$(date +%Y-%m-%d).json > BENCH_$$(date +%Y-%m-%d).json
	@echo "wrote LAB_$$(date +%Y-%m-%d).json and BENCH_$$(date +%Y-%m-%d).json"

# Regression gate: run the Go benchmarks fresh and compare them against the
# newest committed BENCH_*.json snapshot with benchjson -diff. The comparison
# is suite-relative (log-ratios centered on their median, flag band widened
# under global noise), so a uniformly slower host passes; the exit is
# non-zero only when a benchmark got slower relative to the rest of the
# suite. The snapshot's BenchmarkLab/* pseudo-benchmarks are deliberately not
# regenerated here: quick lab wall times under -parallel 4 depend on which
# experiments are co-scheduled and are too noisy to gate on, so the diff
# covers only the real benchmarks the two reports share. Narrow with
# BENCH=<regex>; compare against a different snapshot with BASELINE=<file>.
BASELINE ?= $(lastword $(sort $(wildcard BENCH_*.json)))
bench-diff:
	@test -n "$(BASELINE)" || { echo "bench-diff: no committed BENCH_*.json baseline found"; exit 2; }
	$(GO) test -bench '$(BENCH)' -benchmem ./... | $(GO) run ./cmd/benchjson > /tmp/bench-diff-new.json
	$(GO) run ./cmd/benchjson -diff $(BASELINE) /tmp/bench-diff-new.json

# Daemon smoke test: build cmd/wastelabd, start it, probe /healthz, run one
# quick experiment twice, and assert the repeat is served from the cache.
smoke: build
	sh scripts/smoke-wastelabd.sh

# Fast iteration: shrunken sweeps.
quick:
	$(GO) test -short ./...

clean:
	$(GO) clean ./...
