# Build and verification tiers. Tier-1 is the gate every change must pass
# (see ROADMAP.md); race adds vet and the race detector over the measured
# plane's real goroutines (sched.Pool, chaos.HostJitter).

GO ?= go

.PHONY: all build test race bench quick clean

all: test

build:
	$(GO) build ./...

# Tier-1 verify: must stay green.
test: build
	$(GO) test ./...

# Tier-2 verify: static analysis + race detector.
race:
	$(GO) vet ./...
	$(GO) test -race ./...

# Full benchmark suite (use BENCH=<regex> to narrow).
BENCH ?= .
bench:
	$(GO) test -bench '$(BENCH)' -benchmem ./...

# Fast iteration: shrunken sweeps.
quick:
	$(GO) test -short ./...

clean:
	$(GO) clean ./...
