// Quickstart: run one waste demonstrator, print the headline table, and
// audit a small parallel loop — the three public entry points in ~50 lines.
package main

import (
	"fmt"
	"log"
	"os"
	"time"

	"tenways"
)

func main() {
	// 1. One waste mode on one machine.
	out, err := tenways.RunWaste("W7", tenways.Petascale2009())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("W7 (small messages) on petascale2009: wasteful %.3gs vs remedied %.3gs — %.0fx slower, %.0fx more energy\n\n",
		out.Wasteful.Seconds, out.Remedied.Seconds, out.TimeFactor(), out.EnergyFactor())

	// 2. The headline table, quickly.
	lab := tenways.NewLab()
	t1, err := lab.Run("T1", tenways.Config{Quick: true})
	if err != nil {
		log.Fatal(err)
	}
	if err := t1.Render(os.Stdout); err != nil {
		log.Fatal(err)
	}
	fmt.Println()

	// 3. Audit your own loop.
	_, advice := tenways.Audit(4, func(p *tenways.Pool) {
		p.ForEachStatic(200, func(i int) {
			if i < 20 {
				time.Sleep(300 * time.Microsecond) // skewed work
			}
		})
	})
	for _, a := range advice {
		fmt.Printf("audit: [%s] %s — %s\n", a.ModeID, a.Name, a.Evidence)
	}
}
