// Collectives: how algorithm choice and network quality interact. The
// example builds a custom machine — the 2009 petascale preset with a 10×
// worse interconnect — and regenerates the collective experiments (T3:
// algorithms vs scale, T6: schedules under topology contention, F14:
// allreduce scaling) on both machines, showing that the *ranking* of
// algorithms is stable while the *stakes* grow with the gap between
// compute and network speed.
package main

import (
	"fmt"
	"log"
	"os"

	"tenways"
)

func main() {
	good := tenways.Petascale2009()

	// A custom machine: same node, an interconnect with 10x the latency
	// and a tenth of the bandwidth (an oversubscribed cluster).
	bad := tenways.Petascale2009()
	bad.Name = "petascale2009-slow-net"
	bad.Net.AlphaSec *= 10
	bad.Net.OverheadSec *= 10
	bad.Net.BytesPerSec /= 10

	lab := tenways.NewLab()
	for _, m := range []*tenways.Machine{good, bad} {
		fmt.Printf("==== machine: %s (alpha=%.3gus, bw=%.3g GB/s, n1/2=%.3g KiB) ====\n\n",
			m.Name, m.Net.AlphaSec*1e6, m.Net.BytesPerSec/1e9, m.HalfBandwidthBytes()/1024)
		for _, id := range []string{"T3", "T6"} {
			out, err := lab.Run(id, tenways.Config{Machine: m, Quick: true})
			if err != nil {
				log.Fatal(err)
			}
			if err := out.Render(os.Stdout); err != nil {
				log.Fatal(err)
			}
			fmt.Println()
		}
	}

	fmt.Println("==== allreduce scaling on the slow network (F14) ====")
	out, err := lab.Run("F14", tenways.Config{Machine: bad, Quick: true})
	if err != nil {
		log.Fatal(err)
	}
	if err := out.Render(os.Stdout); err != nil {
		log.Fatal(err)
	}
}
