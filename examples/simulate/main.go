// Simulate: write your own rank program against the simulated machine.
// This example implements a small bulk-synchronous pipeline two ways — a
// wasteful version that barriers globally every step and sends fine-
// grained messages, and a remedied version — then lets the library itself
// say what was wrong: World.Breakdown feeds the same Diagnose engine the
// measured plane uses.
package main

import (
	"fmt"
	"log"

	"tenways"
)

const (
	ranks = 16
	steps = 30
	words = 2048
)

func pipeline(wasteful bool) (makespan float64, joules float64, advice []tenways.Advice) {
	m := tenways.Petascale2009()
	w := tenways.NewWorld(ranks, m)
	w.Alloc("stage", words)
	buf := make([]float64, words)
	makespan, err := w.Run(func(r *tenways.Rank) {
		c := tenways.NewComm(r)
		next := (r.ID() + 1) % ranks
		for s := 0; s < steps; s++ {
			if wasteful {
				// One word at a time, then a global barrier.
				for off := 0; off < words; off += words / 8 {
					r.Put(next, "stage", off, buf[off:off+words/8])
				}
				r.Compute(1e6, 1e5)
				c.BarrierCentral()
			} else {
				// One bulk split-phase transfer overlapped with compute;
				// the pipeline needs no global barrier at all.
				h := r.PutSignal(next, "stage", 0, buf, "stage")
				r.Compute(1e6, 1e5)
				h.Wait()
				r.WaitSignal("stage", int64(s+1))
			}
		}
	})
	if err != nil {
		log.Fatal(err)
	}
	return makespan, w.Meter().Total(), tenways.Diagnose(w.Breakdown(makespan))
}

func main() {
	for _, mode := range []struct {
		name     string
		wasteful bool
	}{{"wasteful pipeline", true}, {"remedied pipeline", false}} {
		secs, joules, advice := pipeline(mode.wasteful)
		fmt.Printf("== %s ==\nmodeled time %.4gms, energy %.4gJ\n", mode.name, secs*1e3, joules)
		if len(advice) == 0 {
			fmt.Println("diagnosis: clean")
		}
		for _, a := range advice {
			fmt.Printf("diagnosis: [%s] %s — %s\n  remedy: %s\n", a.ModeID, a.Name, a.Evidence, a.Remedy)
		}
		fmt.Println()
	}
}
