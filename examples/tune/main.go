// Tune: stop hard-coding remedy parameters. Every remedy in the suite has
// a knob — a block size, a message size, a replication factor, a checkpoint
// interval, an algorithm choice — and the right setting depends on the
// machine, not on the constant someone once picked. This example:
//
//  1. Sweeps the registered tunables on two very different machines and
//     shows the tuner choosing different parameters for each, never doing
//     worse than the hand-picked default (the default is always evaluated
//     first).
//  2. Compares search strategies on the checkpoint-interval tunable:
//     exhaustive grid pays for every point of the axis; golden-section
//     finds the same optimum of the unimodal curve in O(log range)
//     evaluations.
//  3. Re-tunes through a shared cache and shows the repeat costing zero
//     fresh evaluations.
//
// Everything is deterministic: same machine, same tunable, same answer.
package main

import (
	"fmt"
	"log"

	"tenways"
)

func main() {
	fmt.Println("== one knob, two machines ==")
	chunk, err := tenways.TunableByID("F4-chunk", false)
	if err != nil {
		log.Fatal(err)
	}
	for _, m := range []*tenways.Machine{tenways.Laptop2009(), tenways.Exascale()} {
		res, err := chunk.Tune(m, tenways.TuneOptions{})
		if err != nil {
			log.Fatal(err)
		}
		def, err := chunk.Objective(m)(chunk.Default)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-22s default %s -> tuned %s (%.3gx faster, %d evaluations)\n",
			m.Name, chunk.DefaultLabel(), res.Describe(),
			def.Seconds/res.Best.Cost.Seconds, res.Evaluations)
	}

	fmt.Println("\n== strategies on the checkpoint-interval U-curve ==")
	ckpt, err := tenways.TunableByID("F25-interval", false)
	if err != nil {
		log.Fatal(err)
	}
	m := tenways.Petascale2009()
	grid, err := ckpt.Tune(m, tenways.TuneOptions{Strategy: tunableGrid()})
	if err != nil {
		log.Fatal(err)
	}
	golden, err := ckpt.Tune(m, tenways.TuneOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("grid:   %s at %.4g ms in %d evaluations (the oracle: every interval tried)\n",
		grid.Describe(), grid.Best.Cost.Seconds*1e3, grid.Evaluations)
	fmt.Printf("golden: %s at %.4g ms in %d evaluations (%.1f%% off the oracle, O(log range) probes)\n",
		golden.Describe(), golden.Best.Cost.Seconds*1e3, golden.Evaluations,
		100*(golden.Best.Cost.Seconds/grid.Best.Cost.Seconds-1))

	fmt.Println("\n== the memo cache makes re-tuning free ==")
	cache := tenways.NewTuneCache()
	first, err := ckpt.Tune(m, tenways.TuneOptions{Cache: cache})
	if err != nil {
		log.Fatal(err)
	}
	again, err := ckpt.Tune(m, tenways.TuneOptions{Cache: cache})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("first run:  %d fresh evaluations\n", first.Evaluations)
	fmt.Printf("second run: %d fresh evaluations, %d cache hits\n",
		again.Evaluations, again.CacheHits)
}

// tunableGrid returns the exhaustive strategy; a helper so the example
// reads as prose.
func tunableGrid() tenways.TuneStrategy { return tenways.TuneGrid() }
