// Heat: a 2-D heat-diffusion application examined on both planes.
//
// Measured plane: the Jacobi sweep runs on real goroutines under the
// instrumented pool, first with a deliberately serialised reduction per
// step (wasteful), then with privatised partial sums (remedied); the audit
// reports what changed.
//
// Modeled plane: the same application's communication stack is simulated
// on every machine preset, wasteful versus remedied, reporting the
// keynote's metric — simulated steps per joule.
package main

import (
	"fmt"
	"log"
	"sync"
	"time"

	"tenways"
)

const (
	n     = 256 // interior grid dimension
	steps = 40
)

func sweep(p *tenways.Pool, dst, src []float64, serialReduce bool, mu *sync.Mutex, residual *float64) {
	w := n + 2
	p.ForEachChunked(n, 8, func(r int) {
		i := r + 1
		local := 0.0
		for j := 1; j <= n; j++ {
			v := 0.25 * (src[i*w+j-1] + src[i*w+j+1] + src[(i-1)*w+j] + src[(i+1)*w+j])
			local += abs(v - src[i*w+j])
			dst[i*w+j] = v
			if serialReduce {
				// W5 anti-pattern: take the global lock per point.
				mu.Lock()
				*residual += abs(v - src[i*w+j])
				mu.Unlock()
			}
		}
		if !serialReduce {
			mu.Lock()
			*residual += local
			mu.Unlock()
		}
	})
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

func measured(serialReduce bool) (time.Duration, tenways.Breakdown, []tenways.Advice) {
	w := n + 2
	a := make([]float64, w*w)
	b := make([]float64, w*w)
	for i := 0; i < w; i++ {
		a[i*w] = 100 // hot west wall
		b[i*w] = 100
	}
	var mu sync.Mutex
	start := time.Now()
	breakdown, advice := tenways.Audit(4, func(p *tenways.Pool) {
		for s := 0; s < steps; s++ {
			var residual float64
			sweep(p, b, a, serialReduce, &mu, &residual)
			a, b = b, a
		}
	})
	return time.Since(start), breakdown, advice
}

func main() {
	fmt.Printf("measured 2-D heat, %dx%d grid, %d steps, 4 workers\n\n", n, n, steps)
	for _, mode := range []struct {
		name   string
		serial bool
	}{{"per-point locked reduction (wasteful)", true}, {"privatised reduction (remedied)", false}} {
		elapsed, b, advice := measured(mode.serial)
		fmt.Printf("== %s ==\n", mode.name)
		fmt.Printf("wall: %v, breakdown: %s\n", elapsed.Round(time.Millisecond), b)
		for _, a := range advice {
			fmt.Printf("diagnosis: [%s] %s — %s\n", a.ModeID, a.Name, a.Evidence)
		}
		fmt.Println()
	}

	fmt.Println("modeled campaign: 32 ranks, 2048^2 grid, 10 steps")
	fmt.Printf("%-30s %-10s %12s %12s %14s\n", "machine", "stack", "seconds", "joules", "steps/joule")
	for _, m := range tenways.Machines() {
		for _, wasteful := range []bool{true, false} {
			res, err := tenways.StencilCampaign(m, 32, 2048, 10, wasteful)
			if err != nil {
				log.Fatal(err)
			}
			stack := "remedied"
			if wasteful {
				stack = "wasteful"
			}
			fmt.Printf("%-30s %-10s %12.4g %12.4g %14.4g\n",
				m.Name, stack, res.Seconds, res.Joules, res.StepsPerJoule())
		}
	}
}
