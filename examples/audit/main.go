// Audit: point the waste auditor at three variants of the same sparse
// matrix–vector workload — power-law row lengths, the classic imbalance
// trap — and watch the diagnosis change as the schedule improves.
package main

import (
	"fmt"
	"time"

	"tenways"
)

// rowCosts builds a skewed per-row work vector: the first tenth of the
// rows are heavyMs-millisecond giants and the rest cost 1 ms — the
// clustered, heavy-headed layout real matrices from graph and mesh
// problems often arrive with. Millisecond scale keeps the contrast well
// above the OS sleep granularity.
func rowCosts(rows, heavyMs int) []time.Duration {
	costs := make([]time.Duration, rows)
	for r := 0; r < rows; r++ {
		if r < rows/10 {
			costs[r] = time.Duration(heavyMs) * time.Millisecond
		} else {
			costs[r] = time.Millisecond
		}
	}
	return costs
}

func main() {
	// Sleep-based per-row "work" stands in for the I/O-and-compute mix of
	// a real solver and, unlike pure CPU spinning, overlaps across workers
	// even on a single-core host.
	const rows = 200
	costs := rowCosts(rows, 20)
	work := func(r int) {
		time.Sleep(costs[r])
	}

	schedules := []struct {
		name string
		run  func(p *tenways.Pool)
	}{
		{"static blocks", func(p *tenways.Pool) { p.ForEachStatic(rows, work) }},
		{"dynamic chunks of 2", func(p *tenways.Pool) { p.ForEachChunked(rows, 2, work) }},
		{"work stealing", func(p *tenways.Pool) { p.ForEachStealing(rows, 8, work) }},
	}
	for _, s := range schedules {
		start := time.Now()
		b, advice := tenways.Audit(4, s.run)
		fmt.Printf("== %s ==\nwall %v, imbalance %.2f\n",
			s.name, time.Since(start).Round(time.Millisecond), b.Imbalance())
		if len(advice) == 0 {
			fmt.Println("diagnosis: clean")
		}
		for _, a := range advice {
			fmt.Printf("diagnosis: [%s] %s — %s\n  remedy: %s\n", a.ModeID, a.Name, a.Evidence, a.Remedy)
		}
		fmt.Println()
	}
}
