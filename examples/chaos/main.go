// Chaos: inject noise and faults into a simulated run, then remedy them.
// Every other example runs on a perfectly quiet machine; this one makes the
// machine misbehave — seeded, deterministic compute jitter and a straggler
// rank — and shows the two halves of the story:
//
//  1. Amplification: the same injected noise costs far more under a
//     blocking global barrier than under a split-phase barrier that
//     overlaps each step's compute, because blocking synchronisation
//     relays every rank's delay to all ranks.
//  2. Diagnosis: injected time is attributed to the noise category, so
//     Diagnose names the problem (and the remedy) from the breakdown
//     alone.
//
// Fixed seeds make every number this example prints reproducible.
package main

import (
	"fmt"
	"log"

	"tenways"
)

const (
	ranks   = 16
	steps   = 40
	compute = 1e-3 // busy seconds per step per rank
)

// step runs one bulk-synchronous campaign and returns its makespan and
// breakdown-derived facts. With split=true the barrier is the split-phase
// (MPI_Ibarrier-style) tree barrier bracketing the compute; otherwise it is
// the blocking central barrier after the compute.
func campaign(split bool, sc *tenways.Scenario) (secs float64, noiseFrac float64, advice []tenways.Advice) {
	w := tenways.NewWorld(ranks, tenways.Petascale2009())
	if sc != nil {
		sc.Arm(w)
	}
	secs, err := w.Run(func(r *tenways.Rank) {
		c := tenways.NewComm(r)
		for s := 0; s < steps; s++ {
			if split {
				c.BarrierBegin()
				r.Lapse(compute)
				c.BarrierEnd()
			} else {
				r.Lapse(compute)
				c.BarrierCentral()
			}
		}
	})
	if err != nil {
		log.Fatal(err)
	}
	b := w.Breakdown(secs)
	return secs, b.Fraction(tenways.NoiseCategory), tenways.Diagnose(b)
}

func main() {
	scenario := func() *tenways.Scenario {
		return tenways.NewScenario().
			Add(tenways.NewJitter(tenways.JitterExponential, 0.10, 2009, ranks)).
			Add(tenways.NewStraggler(ranks-1, 1.25))
	}
	fmt.Printf("%d ranks, %d steps of %.0fms each; jitter 10%% + rank %d at 0.8x speed\n\n",
		ranks, steps, compute*1e3, ranks-1)
	quietFlat, _, _ := campaign(false, nil)
	quietSplit, _, _ := campaign(true, nil)
	for _, mode := range []struct {
		name  string
		split bool
		quiet float64
	}{
		{"blocking central barrier", false, quietFlat},
		{"split-phase tree barrier", true, quietSplit},
	} {
		secs, noise, advice := campaign(mode.split, scenario())
		fmt.Printf("== %s ==\n", mode.name)
		fmt.Printf("quiet %.4gms -> noisy %.4gms (+%.1f%%), %.1f%% attributed to noise\n",
			mode.quiet*1e3, secs*1e3, 100*(secs/mode.quiet-1), 100*noise)
		for _, a := range advice {
			fmt.Printf("  %-3s %-38s severity %.2f — %s\n", a.ModeID, a.Name, a.Severity, a.Remedy)
		}
		fmt.Println()
	}
	fmt.Println("the split-phase barrier absorbs part of each rank's delay inside the")
	fmt.Println("overlapped compute; the blocking barrier makes everyone pay it.")
}
