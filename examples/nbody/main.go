// Nbody: the flop-rich end of the roofline. A direct n-body step has
// arithmetic intensity in the hundreds of flops per byte, so — unlike the
// stencil — it runs near peak on every machine. This example measures a
// small host-side simulation under the pool, then places the kernel on
// every preset's roofline and prints the modeled interactions-per-joule,
// showing how the "right" algorithm for a machine changes as pJ/flop and
// pJ/byte diverge.
package main

import (
	"fmt"
	"math"
	"time"

	"tenways"
)

const (
	nBodies = 800
	dt      = 1e-5
	steps   = 10
)

type bodies struct {
	x, y, vx, vy []float64
}

func newBodies(n int) *bodies {
	b := &bodies{
		x: make([]float64, n), y: make([]float64, n),
		vx: make([]float64, n), vy: make([]float64, n),
	}
	// Deterministic ring of particles.
	for i := 0; i < n; i++ {
		ang := 2 * math.Pi * float64(i) / float64(n)
		b.x[i] = 0.5 + 0.3*math.Cos(ang)
		b.y[i] = 0.5 + 0.3*math.Sin(ang)
	}
	return b
}

func (b *bodies) step(p *tenways.Pool) {
	n := len(b.x)
	ax := make([]float64, n)
	ay := make([]float64, n)
	p.ForEachChunked(n, 16, func(i int) {
		const soft = 1e-4
		for j := 0; j < n; j++ {
			if j == i {
				continue
			}
			dx := b.x[j] - b.x[i]
			dy := b.y[j] - b.y[i]
			r2 := dx*dx + dy*dy + soft
			inv := 1 / (r2 * math.Sqrt(r2))
			ax[i] += dx * inv
			ay[i] += dy * inv
		}
	})
	for i := 0; i < n; i++ {
		b.vx[i] += ax[i] * dt
		b.vy[i] += ay[i] * dt
		b.x[i] += b.vx[i] * dt
		b.y[i] += b.vy[i] * dt
	}
}

func main() {
	b := newBodies(nBodies)
	start := time.Now()
	breakdown, advice := tenways.Audit(4, func(p *tenways.Pool) {
		for s := 0; s < steps; s++ {
			b.step(p)
		}
	})
	elapsed := time.Since(start)
	interactions := float64(steps) * float64(nBodies) * float64(nBodies-1)
	fmt.Printf("measured: %d bodies, %d steps in %v (%.3g interactions/s)\n",
		nBodies, steps, elapsed.Round(time.Millisecond), interactions/elapsed.Seconds())
	fmt.Printf("breakdown: %s\n", breakdown)
	if len(advice) == 0 {
		fmt.Println("audit: no waste above thresholds — uniform work balances statically")
	}
	for _, a := range advice {
		fmt.Printf("audit: [%s] %s — %s\n", a.ModeID, a.Name, a.Evidence)
	}

	fmt.Println("\nmodeled: direct n-body (AI ~ hundreds of flops/byte) across machines")
	fmt.Printf("%-30s %14s %14s %18s\n", "machine", "ridge AI", "fraction-peak", "interactions/J")
	flopsPerInteraction := 20.0
	for _, m := range tenways.Machines() {
		// Direct n-body: ~20 flops per interaction, 32 bytes streamed per
		// body per step, so AI = 20·n/32 for the modeled n.
		ai := flopsPerInteraction * float64(nBodies) / 32
		att := math.Min(m.PeakFlopsPerNode(), m.DRAM.BytesPerSec*ai)
		secsPerInteraction := flopsPerInteraction / att
		jPerInteraction := flopsPerInteraction*m.PJPerFlop*1e-12 +
			m.Power.BusyWatts*float64(m.CoresPerNode)*secsPerInteraction
		fmt.Printf("%-30s %14.3g %14.3g %18.4g\n",
			m.Name, m.RidgeIntensity(), att/m.PeakFlopsPerNode(), 1/jPerInteraction)
	}
}
