// Benchmarks: one per table and figure of the evaluation suite (T1–T8,
// F1–F25), each regenerating its experiment through the Lab, plus
// measured-plane benchmarks that run the wasteful/remedied kernel pairs on
// the host CPU. Run everything with:
//
//	go test -bench=. -benchmem
//
// Use -short to shrink the modeled sweeps (Quick mode).
package tenways_test

import (
	"strconv"
	"sync"
	"sync/atomic"
	"testing"

	"tenways"
	"tenways/internal/kernels"
	"tenways/internal/machine"
	"tenways/internal/mem"
	"tenways/internal/pdes"
	"tenways/internal/sched"
	"tenways/internal/sim"
	"tenways/internal/workload"
)

func benchExperiment(b *testing.B, id string) {
	b.Helper()
	lab := tenways.NewLab()
	cfg := tenways.Config{Quick: testing.Short()}
	for i := 0; i < b.N; i++ {
		out, err := lab.Run(id, cfg)
		if err != nil {
			b.Fatal(err)
		}
		if out.Table == nil && out.Figure == nil {
			b.Fatal("empty output")
		}
	}
}

// --- Tables ---

func BenchmarkT1TenWays(b *testing.B)         { benchExperiment(b, "T1") }
func BenchmarkT2MachineBalance(b *testing.B)  { benchExperiment(b, "T2") }
func BenchmarkT3Collectives(b *testing.B)     { benchExperiment(b, "T3") }
func BenchmarkT4Roofline(b *testing.B)        { benchExperiment(b, "T4") }
func BenchmarkT5SciencePerJoule(b *testing.B) { benchExperiment(b, "T5") }

// --- Figures ---

func BenchmarkF1Blocking(b *testing.B)           { benchExperiment(b, "F1") }
func BenchmarkF2Resend(b *testing.B)             { benchExperiment(b, "F2") }
func BenchmarkF3Oversync(b *testing.B)           { benchExperiment(b, "F3") }
func BenchmarkF4Imbalance(b *testing.B)          { benchExperiment(b, "F4") }
func BenchmarkF5Serialization(b *testing.B)      { benchExperiment(b, "F5") }
func BenchmarkF6Overlap(b *testing.B)            { benchExperiment(b, "F6") }
func BenchmarkF7SmallMsgs(b *testing.B)          { benchExperiment(b, "F7") }
func BenchmarkF8Roofline(b *testing.B)           { benchExperiment(b, "F8") }
func BenchmarkF9FalseSharing(b *testing.B)       { benchExperiment(b, "F9") }
func BenchmarkF10IdleEnergy(b *testing.B)        { benchExperiment(b, "F10") }
func BenchmarkF11StrongScaling(b *testing.B)     { benchExperiment(b, "F11") }
func BenchmarkF12WeakScaling(b *testing.B)       { benchExperiment(b, "F12") }
func BenchmarkF13CommAvoiding(b *testing.B)      { benchExperiment(b, "F13") }
func BenchmarkF14AllreduceScaling(b *testing.B)  { benchExperiment(b, "F14") }
func BenchmarkT6TopologyContention(b *testing.B) { benchExperiment(b, "T6") }
func BenchmarkT7KarpFlatt(b *testing.B)          { benchExperiment(b, "T7") }
func BenchmarkF15DAGSpeedup(b *testing.B)        { benchExperiment(b, "F15") }
func BenchmarkF16SpeedupLaws(b *testing.B)       { benchExperiment(b, "F16") }
func BenchmarkF17Prefetcher(b *testing.B)        { benchExperiment(b, "F17") }
func BenchmarkF18DistributedSort(b *testing.B)   { benchExperiment(b, "F18") }
func BenchmarkF19CommAvoidingCG(b *testing.B)    { benchExperiment(b, "F19") }
func BenchmarkF20NUMAPlacement(b *testing.B)     { benchExperiment(b, "F20") }
func BenchmarkF21DistributedBFS(b *testing.B)    { benchExperiment(b, "F21") }
func BenchmarkT8NoiseAmplification(b *testing.B) { benchExperiment(b, "T8") }
func BenchmarkF22IdleWaveSpeed(b *testing.B)     { benchExperiment(b, "F22") }
func BenchmarkF23IdleWaveDecay(b *testing.B)     { benchExperiment(b, "F23") }
func BenchmarkF24Straggler(b *testing.B)         { benchExperiment(b, "F24") }
func BenchmarkF25Checkpoint(b *testing.B)        { benchExperiment(b, "F25") }
func BenchmarkT9Autotune(b *testing.B)           { benchExperiment(b, "T9") }
func BenchmarkF26TunerConvergence(b *testing.B)  { benchExperiment(b, "F26") }
func BenchmarkT12DaemonSim(b *testing.B)         { benchExperiment(b, "T12") }

// --- Measured plane: the wasteful/remedied pairs on the host CPU ---

// BenchmarkMeasuredMatmul contrasts W1 on real hardware: naive ijk versus
// cache-blocked, n = 192 (3 matrices x 288 KiB, beyond typical L2).
func BenchmarkMeasuredMatmul(b *testing.B) {
	n := 192
	a := make([]float64, n*n)
	bb := make([]float64, n*n)
	c := make([]float64, n*n)
	rng := workload.NewRand(1)
	for i := range a {
		a[i] = rng.Float64()
		bb[i] = rng.Float64()
	}
	flops := kernels.MatMulFlops(n)
	b.Run("naive", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			kernels.MatMulNaive(c, a, bb, n)
		}
		b.ReportMetric(flops*float64(b.N)/b.Elapsed().Seconds()/1e9, "GFLOPS")
	})
	b.Run("blocked32", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			kernels.MatMulBlocked(c, a, bb, n, 32)
		}
		b.ReportMetric(flops*float64(b.N)/b.Elapsed().Seconds()/1e9, "GFLOPS")
	})
}

// BenchmarkMeasuredTriad measures STREAM triad bandwidth (W8's
// low-intensity end) on the host.
func BenchmarkMeasuredTriad(b *testing.B) {
	n := 1 << 22
	x := make([]float64, n)
	y := make([]float64, n)
	z := make([]float64, n)
	b.SetBytes(int64(24 * n))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		kernels.Triad(z, x, y, 3.0)
	}
}

// BenchmarkMeasuredFalseSharing contrasts W9 on real hardware: four
// goroutines hammering adjacent versus padded counters.
func BenchmarkMeasuredFalseSharing(b *testing.B) {
	const workers = 4
	run := func(b *testing.B, stride int) {
		counters := make([]int64, workers*stride)
		b.ResetTimer()
		var wg sync.WaitGroup
		per := b.N/workers + 1
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				for i := 0; i < per; i++ {
					atomic.AddInt64(&counters[w*stride], 1)
				}
			}(w)
		}
		wg.Wait()
	}
	b.Run("packed", func(b *testing.B) { run(b, 1) })
	b.Run("padded", func(b *testing.B) { run(b, 16) })
}

// BenchmarkMeasuredLockVsSharded contrasts W5 on real hardware.
func BenchmarkMeasuredLockVsSharded(b *testing.B) {
	const workers = 4
	b.Run("lock", func(b *testing.B) {
		var mu sync.Mutex
		var total int64
		var wg sync.WaitGroup
		per := b.N/workers + 1
		b.ResetTimer()
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := 0; i < per; i++ {
					mu.Lock()
					total++
					mu.Unlock()
				}
			}()
		}
		wg.Wait()
		_ = total
	})
	b.Run("sharded", func(b *testing.B) {
		shards := make([]int64, workers*16)
		var wg sync.WaitGroup
		per := b.N/workers + 1
		b.ResetTimer()
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				local := int64(0)
				for i := 0; i < per; i++ {
					local++
				}
				shards[w*16] = local
			}(w)
		}
		wg.Wait()
	})
}

// BenchmarkMeasuredBarrier contrasts W10's waiting disciplines: blocking
// versus spinning sense-reversing barriers, 4 parties.
func BenchmarkMeasuredBarrier(b *testing.B) {
	const parties = 4
	b.Run("blocking", func(b *testing.B) {
		bar := sched.NewBarrier(parties)
		var wg sync.WaitGroup
		b.ResetTimer()
		for w := 0; w < parties; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := 0; i < b.N; i++ {
					bar.Wait()
				}
			}()
		}
		wg.Wait()
	})
	b.Run("spin", func(b *testing.B) {
		bar := sched.NewSpinBarrier(parties)
		var wg sync.WaitGroup
		b.ResetTimer()
		for w := 0; w < parties; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := 0; i < b.N; i++ {
					bar.Wait()
				}
			}()
		}
		wg.Wait()
	})
}

// BenchmarkMeasuredSchedulers contrasts W4's schedulers over uniform work
// (the no-skew control: static should win on overhead).
func BenchmarkMeasuredSchedulers(b *testing.B) {
	work := func(i int) {
		x := float64(i)
		for k := 0; k < 200; k++ {
			x = x*1.0000001 + 1e-9
		}
		if x < 0 {
			panic("unreachable: keeps the loop live")
		}
	}
	const n = 4096
	for _, tc := range []struct {
		name string
		run  func(p *sched.Pool)
	}{
		{"static", func(p *sched.Pool) { p.ForEachStatic(n, work) }},
		{"chunked64", func(p *sched.Pool) { p.ForEachChunked(n, 64, work) }},
		{"guided", func(p *sched.Pool) { p.ForEachGuided(n, 8, work) }},
		{"stealing", func(p *sched.Pool) { p.ForEachStealing(n, 64, work) }},
	} {
		b.Run(tc.name, func(b *testing.B) {
			p := sched.NewPool(4, nil)
			for i := 0; i < b.N; i++ {
				tc.run(p)
			}
		})
	}
}

// BenchmarkMeasuredSampleSort measures the parallel sort kernel.
func BenchmarkMeasuredSampleSort(b *testing.B) {
	n := 1 << 16
	rng := workload.NewRand(3)
	src := make([]float64, n)
	for i := range src {
		src[i] = rng.Float64()
	}
	buf := make([]float64, n)
	p := sched.NewPool(4, nil)
	b.SetBytes(int64(8 * n))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		copy(buf, src)
		kernels.SampleSort(p, buf, 1)
	}
}

// BenchmarkMeasuredFFT measures the radix-2 FFT.
func BenchmarkMeasuredFFT(b *testing.B) {
	for _, n := range []int{1 << 12, 1 << 16} {
		b.Run(strconv.Itoa(n), func(b *testing.B) {
			x := make([]complex128, n)
			for i := range x {
				x[i] = complex(float64(i%7), 0)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := kernels.FFT(x); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(kernels.FFTFlops(n)*float64(b.N)/b.Elapsed().Seconds()/1e9, "GFLOPS")
		})
	}
}

// BenchmarkMeasuredBFS measures graph traversal on an R-MAT graph.
func BenchmarkMeasuredBFS(b *testing.B) {
	g := workload.RMAT(11, 12, 8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		kernels.BFS(g, 0)
	}
	b.ReportMetric(float64(g.NumEdges()*b.N)/b.Elapsed().Seconds()/1e6, "MTEPS")
}

// BenchmarkCacheSim measures the cache simulator's own throughput — the
// substrate cost that bounds F1/F9 sweep sizes.
func BenchmarkCacheSim(b *testing.B) {
	h, err := mem.NewHierarchy(machine.Laptop2009(), 1)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Read(0, uint64(i%(1<<22))*8, 8)
	}
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds()/1e6, "Maccess/s")
}

// BenchmarkDESKernel measures the discrete-event kernel's event rate — the
// substrate cost that bounds F11/F14 rank counts.
func BenchmarkDESKernel(b *testing.B) {
	k := sim.NewKernel()
	_, err := k.Run(2, func(p *sim.Proc) {
		for i := 0; i < b.N; i++ {
			p.Advance(1e-9)
		}
	})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportMetric(float64(k.Events())/b.Elapsed().Seconds()/1e6, "Mevents/s")
}

// BenchmarkPDESIdleWave measures the partitioned engine's event rate on the
// F28 idle-wave workload across partition counts — the scaling curve that
// justifies the windowed design over the serial kernel (partitions=1 is the
// serial baseline with the same queue and batch machinery in the loop).
// The queue=, barrier=, and sync= axes pin each discipline at the widest
// partition count so bench-diff can certify the ladder/sense rewrite and
// the Time-Warp engine against the committed baseline and catch any
// discipline regressing independently.
func BenchmarkPDESIdleWave(b *testing.B) {
	ranks := 1 << 14
	if testing.Short() {
		ranks = 1 << 11
	}
	run := func(b *testing.B, cfg pdes.Config) {
		var events uint64
		for i := 0; i < b.N; i++ {
			w, err := pdes.NewIdleWave(ranks, 6, 50e-6, 400e-6, []int{1, 4}, []float64{2e-6, 2.5e-6})
			if err != nil {
				b.Fatal(err)
			}
			cfg.Lookahead = w.MinDelay()
			res, err := pdes.Run(w, cfg)
			if err != nil {
				b.Fatal(err)
			}
			events += res.Events
		}
		b.ReportMetric(float64(events)/b.Elapsed().Seconds()/1e6, "Mevents/s")
	}
	for _, parts := range []int{1, 2, 4, 8} {
		b.Run("parts="+strconv.Itoa(parts), func(b *testing.B) {
			run(b, pdes.Config{Partitions: parts})
		})
	}
	for _, q := range []pdes.QueueKind{pdes.QueueLadder, pdes.QueueHeap} {
		b.Run("parts=8/queue="+q.String(), func(b *testing.B) {
			run(b, pdes.Config{Partitions: 8, Queue: q})
		})
	}
	for _, bar := range []pdes.BarrierKind{pdes.BarrierSense, pdes.BarrierChan} {
		b.Run("parts=8/workers=4/barrier="+bar.String(), func(b *testing.B) {
			run(b, pdes.Config{Partitions: 8, Workers: 4, Barrier: bar})
		})
	}
	for _, sync := range []pdes.SyncKind{pdes.SyncConservative, pdes.SyncOptimistic} {
		b.Run("parts=8/workers=4/sync="+sync.String(), func(b *testing.B) {
			run(b, pdes.Config{Partitions: 8, Workers: 4, Sync: sync})
		})
	}
}

// BenchmarkKernelEvents tracks the event kernel's throughput with and
// without a chaos perturber in the loop, so injector overhead on the hot
// Lapse path stays visible. The per-regime breakdown lives in
// internal/sim's BenchmarkKernelEvents.
func BenchmarkKernelEvents(b *testing.B) {
	run := func(b *testing.B, sc *tenways.Scenario) {
		w := tenways.NewWorld(4, tenways.Petascale2009())
		if sc != nil {
			sc.Arm(w)
		}
		per := b.N/4 + 1
		if _, err := w.Run(func(r *tenways.Rank) {
			for i := 0; i < per; i++ {
				r.Lapse(1e-9)
			}
		}); err != nil {
			b.Fatal(err)
		}
	}
	b.Run("quiet", func(b *testing.B) { run(b, nil) })
	b.Run("jitter", func(b *testing.B) {
		run(b, tenways.NewScenario().Add(tenways.NewJitter(tenways.JitterExponential, 0.1, 42, 4)))
	})
}
