package tenways_test

import (
	"testing"
	"time"

	"tenways"
)

func TestMachinesPresets(t *testing.T) {
	ms := tenways.Machines()
	if len(ms) != 4 {
		t.Fatalf("presets = %d", len(ms))
	}
	if tenways.MachineByName("laptop2009") == nil {
		t.Fatal("laptop2009 missing")
	}
	if tenways.MachineByName("missing") != nil {
		t.Fatal("unknown preset should be nil")
	}
	if tenways.Laptop2009().Name != "laptop2009" ||
		tenways.Petascale2009().Name != "petascale2009" ||
		tenways.Exascale().Name != "exascale" {
		t.Fatal("preset constructors misnamed")
	}
}

func TestWastesCatalogue(t *testing.T) {
	ws := tenways.Wastes()
	if len(ws) != 10 {
		t.Fatalf("wastes = %d", len(ws))
	}
	out, err := tenways.RunWaste("W10", tenways.Petascale2009())
	if err != nil {
		t.Fatal(err)
	}
	if out.EnergyFactor() <= 1 {
		t.Fatalf("W10 energy factor = %g", out.EnergyFactor())
	}
	if _, err := tenways.RunWaste("W0", tenways.Laptop2009()); err == nil {
		t.Fatal("expected error for unknown waste")
	}
}

func TestLabThroughFacade(t *testing.T) {
	lab := tenways.NewLab()
	if len(lab.IDs()) != 43 {
		t.Fatalf("experiments = %d", len(lab.IDs()))
	}
	out, err := lab.Run("T2", tenways.Config{Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	if out.Table == nil {
		t.Fatal("T2 should produce a table")
	}
}

func TestAuditDetectsImbalance(t *testing.T) {
	// A deliberately imbalanced static loop: all the work lands on the
	// first tenth of iterations.
	_, advice := tenways.Audit(4, func(p *tenways.Pool) {
		p.ForEachStatic(400, func(i int) {
			if i < 100 {
				time.Sleep(200 * time.Microsecond)
			}
		})
	})
	found := false
	for _, a := range advice {
		if a.ModeID == "W4" {
			found = true
		}
	}
	if !found {
		t.Fatalf("audit missed the imbalance: %+v", advice)
	}
}

func TestAuditCleanLoop(t *testing.T) {
	_, advice := tenways.Audit(4, func(p *tenways.Pool) {
		p.ForEachChunked(400, 8, func(i int) {
			time.Sleep(50 * time.Microsecond)
		})
	})
	for _, a := range advice {
		if a.ModeID == "W4" && a.Severity > 0.4 {
			t.Fatalf("balanced loop diagnosed with severe imbalance: %+v", a)
		}
	}
}

func TestSimulatedWorldThroughFacade(t *testing.T) {
	w := tenways.NewWorld(4, tenways.Petascale2009())
	w.Alloc("x", 8)
	end, err := w.Run(func(r *tenways.Rank) {
		c := tenways.NewComm(r)
		if r.ID() == 0 {
			r.Put(1, "x", 0, []float64{1, 2, 3})
		}
		c.BarrierDissemination()
	})
	if err != nil {
		t.Fatal(err)
	}
	if end <= 0 {
		t.Fatal("no simulated time elapsed")
	}
	b := w.Breakdown(end)
	if b.Wall <= 0 {
		t.Fatal("breakdown has no wall time")
	}
	// A barrier-only run should attribute sync-wait somewhere.
	advice := tenways.Diagnose(b)
	_ = advice // presence depends on proportions; the call itself must work
}

func TestSortCampaignThroughFacade(t *testing.T) {
	res, err := tenways.SortCampaign(tenways.Petascale2009(), 4, 256, false)
	if err != nil {
		t.Fatal(err)
	}
	if res.Keys != 4*256 || res.Seconds <= 0 {
		t.Fatalf("sort result: %+v", res)
	}
}

func TestStencilCampaignThroughFacade(t *testing.T) {
	res, err := tenways.StencilCampaign(tenways.Laptop2009(), 4, 256, 3, false)
	if err != nil {
		t.Fatal(err)
	}
	if res.StepsPerJoule() <= 0 {
		t.Fatalf("stencil result: %+v", res)
	}
}

func TestBFSCampaignThroughFacade(t *testing.T) {
	g := tenways.RMAT(5, 8, 8)
	res, err := tenways.BFSCampaign(tenways.Petascale2009(), 4, g, false)
	if err != nil {
		t.Fatal(err)
	}
	if res.TEPS() <= 0 || res.Levels == 0 {
		t.Fatalf("bfs result: %+v", res)
	}
}
