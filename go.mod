module tenways

go 1.22
