package main

import (
	"context"
	"encoding/json"
	"strings"
	"testing"

	"tenways"
	"tenways/internal/machine"
	"tenways/internal/roofline"
)

func TestParseLine(t *testing.T) {
	b, ok := parseLine("BenchmarkMatmul-8   \t     123\t  456789 ns/op\t  1024 B/op\t       7 allocs/op")
	if !ok {
		t.Fatal("benchmem line not parsed")
	}
	if b.Name != "BenchmarkMatmul-8" || b.Iterations != 123 || b.NsPerOp != 456789 {
		t.Errorf("parsed %+v", b)
	}
	if b.BytesPerOp == nil || *b.BytesPerOp != 1024 {
		t.Errorf("bytes_per_op = %v, want 1024", b.BytesPerOp)
	}
	if b.AllocsPerOp == nil || *b.AllocsPerOp != 7 {
		t.Errorf("allocs_per_op = %v, want 7", b.AllocsPerOp)
	}

	b, ok = parseLine("BenchmarkNoMem-8\t1000000\t1234.5 ns/op")
	if !ok {
		t.Fatal("plain line not parsed")
	}
	if b.NsPerOp != 1234.5 || b.BytesPerOp != nil || b.AllocsPerOp != nil {
		t.Errorf("parsed %+v", b)
	}

	for _, line := range []string{
		"goos: linux",
		"PASS",
		"ok  \ttenways/internal/tune\t1.7s",
		"BenchmarkBroken-8\tnotanumber\t12 ns/op",
		"Benchmark headers only",
	} {
		if _, ok := parseLine(line); ok {
			t.Errorf("line %q parsed as a benchmark", line)
		}
	}
}

// TestLabReportRoundTrip feeds a real wastelab -json document through the
// stdin auto-detection path and checks the lab report is embedded intact
// and its experiments appear as pseudo-benchmarks.
func TestLabReportRoundTrip(t *testing.T) {
	lab := tenways.NewLab()
	cfg := tenways.Config{Quick: true}
	results, err := lab.RunAll(context.Background(), cfg, tenways.RunOptions{
		Workers: 2, IDs: []string{"T1", "F16"},
	})
	if err != nil {
		t.Fatal(err)
	}
	blob, err := json.MarshalIndent(tenways.NewLabReport(cfg, 2, results), "", "  ")
	if err != nil {
		t.Fatal(err)
	}

	var out strings.Builder
	if err := run(strings.NewReader(string(blob)+"\n"), &out, "", "petascale2009"); err != nil {
		t.Fatal(err)
	}
	var rep Report
	if err := json.Unmarshal([]byte(out.String()), &rep); err != nil {
		t.Fatal(err)
	}
	if rep.Lab == nil || len(rep.Lab.Results) != 2 || rep.Lab.Workers != 2 {
		t.Fatalf("lab report not embedded: %+v", rep.Lab)
	}
	if rep.Lab.Results[0].ID != "T1" || rep.Lab.Results[0].Metrics.Counter("lab.runs") != 1 {
		t.Fatalf("lab record lost in round trip: %+v", rep.Lab.Results[0])
	}
	if len(rep.Benchmarks) != 2 {
		t.Fatalf("got %d pseudo-benchmarks, want 2", len(rep.Benchmarks))
	}
	b := rep.Benchmarks[0]
	if b.Name != "BenchmarkLab/T1-2" || b.Iterations != 1 || b.NsPerOp <= 0 {
		t.Fatalf("pseudo-benchmark malformed: %+v", b)
	}
	if pb, ok := parseLine(b.Raw); !ok || pb.Name != b.Name {
		t.Fatalf("raw line does not re-parse: %q", b.Raw)
	}
}

// TestBenchTextStillParses pins the legacy stdin path after the -lab
// extension: plain `go test -bench` text must keep working.
func TestBenchTextStillParses(t *testing.T) {
	in := "goos: linux\nBenchmarkMatmul-8\t123\t456789 ns/op\nPASS\n"
	var out strings.Builder
	if err := run(strings.NewReader(in), &out, "", "petascale2009"); err != nil {
		t.Fatal(err)
	}
	var rep Report
	if err := json.Unmarshal([]byte(out.String()), &rep); err != nil {
		t.Fatal(err)
	}
	if rep.Lab != nil || len(rep.Benchmarks) != 1 || rep.Benchmarks[0].Name != "BenchmarkMatmul-8" {
		t.Fatalf("bench text mis-parsed: %+v", rep)
	}
}

// TestMalformedLabReport pins the failure modes of -lab input: truncated
// JSON, type mismatches, trailing garbage, and well-formed JSON that is
// not a lab report must all error, with syntax and type errors pointing at
// the offending offset. Previously a `{}` (or any valid non-report JSON)
// was swallowed into an empty report.
func TestMalformedLabReport(t *testing.T) {
	cases := []struct {
		name string
		in   string
		want []string // substrings of the error message
	}{
		{
			name: "truncated",
			in:   `{"machine": "laptop2009", "results": [`,
			want: []string{"parse lab report", "offset", "line 1"},
		},
		{
			name: "type mismatch",
			in:   `{"machine": "laptop2009",` + "\n" + ` "workers": "four",` + "\n" + ` "results": []}`,
			want: []string{"parse lab report", "workers", "want int", "line 2"},
		},
		{
			name: "trailing garbage",
			in:   `{"machine": "laptop2009", "results": []}garbage`,
			want: []string{"parse lab report", "offset 41"},
		},
		{
			name: "not a lab report",
			in:   `{"unrelated": true}`,
			want: []string{"not a wastelab report"},
		},
		{
			name: "wrong top-level type",
			in:   `[1, 2, 3]`,
			want: []string{"parse lab report", "offset"},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := readLabReport(strings.NewReader(tc.in))
			if err == nil {
				t.Fatalf("input %q accepted as a lab report", tc.in)
			}
			for _, w := range tc.want {
				if !strings.Contains(err.Error(), w) {
					t.Errorf("error %q missing %q", err, w)
				}
			}
		})
	}

	// The error must also surface through run()'s stdin auto-detect path.
	var out strings.Builder
	if err := run(strings.NewReader(`{"machine": 3}`), &out, "", "petascale2009"); err == nil {
		t.Fatal("run swallowed a malformed piped lab report")
	}
}

// TestOffsetPos checks the offset-to-position conversion at boundaries.
func TestOffsetPos(t *testing.T) {
	data := []byte("ab\ncd\n")
	cases := []struct {
		off       int64
		line, col int
	}{
		{0, 1, 1}, {2, 1, 3}, {3, 2, 1}, {5, 2, 3}, {99, 3, 1},
	}
	for _, tc := range cases {
		if l, c := offsetPos(data, tc.off); l != tc.line || c != tc.col {
			t.Errorf("offsetPos(%d) = %d:%d, want %d:%d", tc.off, l, c, tc.line, tc.col)
		}
	}
}

// TestCustomMetricsAndRoofline covers the metrics map and the roofline
// efficiency column: ReportMetric pairs land in Metrics keyed by unit, the
// GFLOPS-reporting kernels with a known intensity get roofline_eff =
// flops / Attainable on the reference preset, and everything else is left
// un-annotated.
func TestCustomMetricsAndRoofline(t *testing.T) {
	b, ok := parseLine("BenchmarkPDESIdleWave/parts=8    \t13\t90994763 ns/op\t5.401 Mevents/s\t8617264 B/op\t155 allocs/op")
	if !ok {
		t.Fatal("metric line not parsed")
	}
	if b.Metrics["Mevents/s"] != 5.401 {
		t.Fatalf("Metrics = %v, want Mevents/s 5.401", b.Metrics)
	}
	if b.BytesPerOp == nil || *b.BytesPerOp != 8617264 || b.AllocsPerOp == nil || *b.AllocsPerOp != 155 {
		t.Fatalf("benchmem fields lost next to a custom metric: %+v", b)
	}

	for name, want := range map[string]string{
		"BenchmarkMeasuredFFT/4096-8":   "BenchmarkMeasuredFFT/4096",
		"BenchmarkMeasuredFFT/4096":     "BenchmarkMeasuredFFT/4096",
		"BenchmarkMatmul-16":            "BenchmarkMatmul",
		"BenchmarkPDESIdleWave/parts=8": "BenchmarkPDESIdleWave/parts=8",
	} {
		if got := stripProcs(name); got != want {
			t.Errorf("stripProcs(%q) = %q, want %q", name, got, want)
		}
	}

	in := "BenchmarkMeasuredMatmul/naive-8\t100\t2000000 ns/op\t7.08 GFLOPS\n" +
		"BenchmarkMeasuredTriad-8\t500\t800000 ns/op\t12000 MB/s\n"
	var out strings.Builder
	if err := run(strings.NewReader(in), &out, "", "petascale2009"); err != nil {
		t.Fatal(err)
	}
	var rep Report
	if err := json.Unmarshal([]byte(out.String()), &rep); err != nil {
		t.Fatal(err)
	}
	if rep.RooflineMachine != "petascale2009" {
		t.Fatalf("roofline_machine = %q", rep.RooflineMachine)
	}
	mm := rep.Benchmarks[0]
	if mm.RooflineEff == nil {
		t.Fatalf("no roofline_eff on %s: %+v", mm.Name, mm)
	}
	ai, ok := rooflineIntensity("BenchmarkMeasuredMatmul/naive")
	if !ok {
		t.Fatal("naive matmul intensity missing")
	}
	want := 7.08e9 / roofline.Attainable(machine.Petascale2009(), ai)
	if diff := *mm.RooflineEff - want; diff > 1e-12 || diff < -1e-12 {
		t.Fatalf("roofline_eff = %v, want %v", *mm.RooflineEff, want)
	}
	if rep.Benchmarks[1].RooflineEff != nil {
		t.Fatalf("triad (no GFLOPS metric) got roofline_eff %v", *rep.Benchmarks[1].RooflineEff)
	}

	if err := run(strings.NewReader(""), &strings.Builder{}, "", "notamachine"); err == nil {
		t.Fatal("unknown machine preset accepted")
	}
}
