package main

import "testing"

func TestParseLine(t *testing.T) {
	b, ok := parseLine("BenchmarkMatmul-8   \t     123\t  456789 ns/op\t  1024 B/op\t       7 allocs/op")
	if !ok {
		t.Fatal("benchmem line not parsed")
	}
	if b.Name != "BenchmarkMatmul-8" || b.Iterations != 123 || b.NsPerOp != 456789 {
		t.Errorf("parsed %+v", b)
	}
	if b.BytesPerOp == nil || *b.BytesPerOp != 1024 {
		t.Errorf("bytes_per_op = %v, want 1024", b.BytesPerOp)
	}
	if b.AllocsPerOp == nil || *b.AllocsPerOp != 7 {
		t.Errorf("allocs_per_op = %v, want 7", b.AllocsPerOp)
	}

	b, ok = parseLine("BenchmarkNoMem-8\t1000000\t1234.5 ns/op")
	if !ok {
		t.Fatal("plain line not parsed")
	}
	if b.NsPerOp != 1234.5 || b.BytesPerOp != nil || b.AllocsPerOp != nil {
		t.Errorf("parsed %+v", b)
	}

	for _, line := range []string{
		"goos: linux",
		"PASS",
		"ok  \ttenways/internal/tune\t1.7s",
		"BenchmarkBroken-8\tnotanumber\t12 ns/op",
		"Benchmark headers only",
	} {
		if _, ok := parseLine(line); ok {
			t.Errorf("line %q parsed as a benchmark", line)
		}
	}
}
