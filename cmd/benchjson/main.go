// Command benchjson converts benchmark results into one JSON record (on
// stdout). It accepts two inputs, separately or together:
//
//   - `go test -bench` text on stdin: one object per benchmark line with
//     the parsed metrics, plus run metadata. Custom b.ReportMetric pairs
//     land in a per-benchmark "metrics" map, and the GFLOPS-reporting
//     measured kernels additionally get "roofline_eff" — their flop rate
//     as a fraction of the -machine preset's roofline bound at the
//     kernel's arithmetic intensity. The original benchmark line is kept
//     verbatim in each record's "raw" field, so the text format benchstat
//     consumes can be reconstructed exactly with e.g.
//     jq -r '.benchmarks[].raw' BENCH_2026-08-06.json | benchstat /dev/stdin
//   - a wastelab -json lab report, via -lab FILE (or on stdin, detected by
//     its leading '{'): the report is embedded under "lab" and each
//     successful experiment also becomes a pseudo-benchmark
//     BenchmarkLab/<id>-<workers> carrying its wall time, so lab runs and
//     Go benchmarks share one schema downstream.
//
// With -diff it instead compares two previously emitted reports:
//
//	benchjson -diff BENCH_old.json BENCH_new.json
//
// prints a suite-relative comparison and exits 1 if any benchmark regressed
// beyond -threshold (median-centered, so a uniformly slower CI host flags
// nothing). Used by `make bench-json` and `make bench-diff`.
package main

import (
	"bufio"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"strconv"
	"strings"
	"time"

	"tenways"
	"tenways/internal/kernels"
	"tenways/internal/machine"
	"tenways/internal/roofline"
)

// Benchmark is one parsed benchmark result line.
type Benchmark struct {
	Name       string  `json:"name"`
	Iterations int64   `json:"iterations"`
	NsPerOp    float64 `json:"ns_per_op"`
	// BytesPerOp and AllocsPerOp are present only under -benchmem.
	BytesPerOp  *int64 `json:"bytes_per_op,omitempty"`
	AllocsPerOp *int64 `json:"allocs_per_op,omitempty"`
	// Metrics holds the custom b.ReportMetric pairs (GFLOPS, Mevents/s,
	// MB/s, ...) keyed by unit.
	Metrics map[string]float64 `json:"metrics,omitempty"`
	// RooflineEff is the measured flop rate as a fraction of the reference
	// machine's roofline bound at the benchmark's arithmetic intensity —
	// present only for the GFLOPS-reporting kernels rooflineIntensity
	// knows. It is W8 made visible in the benchmark report: a kernel far
	// under its own bound is mismatched to the machine balance, not slow.
	RooflineEff *float64 `json:"roofline_eff,omitempty"`
	Raw         string   `json:"raw"`
}

// Report is the emitted document.
type Report struct {
	Date      string `json:"date"`
	GoVersion string `json:"go_version"`
	GOOS      string `json:"goos"`
	GOARCH    string `json:"goarch"`
	// RooflineMachine names the preset whose roofline bound the
	// roofline_eff fields are fractions of.
	RooflineMachine string             `json:"roofline_machine,omitempty"`
	Benchmarks      []Benchmark        `json:"benchmarks"`
	Lab             *tenways.LabReport `json:"lab,omitempty"`
}

// parseLine parses one "BenchmarkName-8  123  456 ns/op [...]" line; ok is
// false for non-benchmark lines.
func parseLine(line string) (Benchmark, bool) {
	if !strings.HasPrefix(line, "Benchmark") {
		return Benchmark{}, false
	}
	fields := strings.Fields(line)
	if len(fields) < 4 || fields[3] != "ns/op" {
		return Benchmark{}, false
	}
	iters, err1 := strconv.ParseInt(fields[1], 10, 64)
	ns, err2 := strconv.ParseFloat(fields[2], 64)
	if err1 != nil || err2 != nil {
		return Benchmark{}, false
	}
	b := Benchmark{Name: fields[0], Iterations: iters, NsPerOp: ns, Raw: line}
	for i := 4; i+1 < len(fields); i += 2 {
		switch unit := fields[i+1]; unit {
		case "B/op":
			if v, err := strconv.ParseInt(fields[i], 10, 64); err == nil {
				b.BytesPerOp = &v
			}
		case "allocs/op":
			if v, err := strconv.ParseInt(fields[i], 10, 64); err == nil {
				b.AllocsPerOp = &v
			}
		default:
			// Custom b.ReportMetric pairs: any float value with a unit.
			if v, err := strconv.ParseFloat(fields[i], 64); err == nil {
				if b.Metrics == nil {
					b.Metrics = make(map[string]float64)
				}
				b.Metrics[unit] = v
			}
		}
	}
	return b, true
}

// stripProcs removes the -<GOMAXPROCS> suffix go test appends to benchmark
// names ("BenchmarkMeasuredFFT/4096-8" -> "BenchmarkMeasuredFFT/4096"), so
// the roofline table matches across hosts with different core counts.
func stripProcs(name string) string {
	i := strings.LastIndexByte(name, '-')
	if i < 0 {
		return name
	}
	if _, err := strconv.Atoi(name[i+1:]); err != nil {
		return name
	}
	return name[:i]
}

// rooflineIntensity maps the GFLOPS-reporting measured benchmarks (procs
// suffix stripped) to the arithmetic intensity of the kernel they run, with
// the same streaming models T4's roofline table uses. Benchmarks not listed
// here simply get no roofline_eff field.
func rooflineIntensity(name string) (float64, bool) {
	switch name {
	case "BenchmarkMeasuredMatmul/naive":
		// Naive ijk at n=192 streams both operands per multiply-add: 2
		// flops per 16 bytes, no blocking reuse.
		return 2.0 / 16, true
	case "BenchmarkMeasuredMatmul/blocked32":
		// 2b flops per 24 bytes streamed per block row at b=32.
		return 2 * 32 / 8.0 / 3, true
	case "BenchmarkMeasuredFFT/4096", "BenchmarkMeasuredFFT/65536":
		n := 1 << 12
		if strings.HasSuffix(name, "65536") {
			n = 1 << 16
		}
		naive, _ := kernels.FFTBytes(n, 3<<20)
		return kernels.FFTFlops(n) / naive, true
	}
	return 0, false
}

// annotateRoofline fills RooflineEff for every benchmark whose flop rate
// and intensity are known: measured flop/s over the spec's roofline bound.
func annotateRoofline(bs []Benchmark, spec *machine.Spec) {
	for i := range bs {
		g, ok := bs[i].Metrics["GFLOPS"]
		if !ok {
			continue
		}
		ai, ok := rooflineIntensity(stripProcs(bs[i].Name))
		if !ok {
			continue
		}
		eff := g * 1e9 / roofline.Attainable(spec, ai)
		bs[i].RooflineEff = &eff
	}
}

// labBenchmarks projects a lab report's successful experiments into the
// benchmark schema: one pseudo-benchmark per experiment, iterations 1,
// ns/op the measured wall time. Failed experiments stay visible in the
// embedded report's error fields instead.
func labBenchmarks(lr *tenways.LabReport) []Benchmark {
	out := make([]Benchmark, 0, len(lr.Results))
	for _, rec := range lr.Results {
		if rec.Error != "" {
			continue
		}
		name := fmt.Sprintf("BenchmarkLab/%s-%d", rec.ID, lr.Workers)
		ns := rec.WallMS * 1e6
		out = append(out, Benchmark{
			Name:       name,
			Iterations: 1,
			NsPerOp:    ns,
			Raw:        fmt.Sprintf("%s\t%d\t%.0f ns/op", name, 1, ns),
		})
	}
	return out
}

// readLabReport decodes one wastelab -json document. Malformed input is an
// error, not a silent empty report: syntax and type mismatches carry the
// offending byte offset (with line and column), trailing garbage after the
// document is rejected, and a well-formed JSON value that isn't a lab
// report (no machine, no results) is called out explicitly.
func readLabReport(r io.Reader) (*tenways.LabReport, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, fmt.Errorf("read lab report: %v", err)
	}
	var lr tenways.LabReport
	if err := json.Unmarshal(data, &lr); err != nil {
		var syn *json.SyntaxError
		var typ *json.UnmarshalTypeError
		switch {
		case errors.As(err, &syn):
			line, col := offsetPos(data, syn.Offset)
			return nil, fmt.Errorf("parse lab report: %v at offset %d (line %d, column %d)",
				syn, syn.Offset, line, col)
		case errors.As(err, &typ):
			line, col := offsetPos(data, typ.Offset)
			field := typ.Field
			if field == "" {
				field = "document"
			}
			return nil, fmt.Errorf("parse lab report: %s holds JSON %s, want %s, at offset %d (line %d, column %d)",
				field, typ.Value, typ.Type, typ.Offset, line, col)
		}
		return nil, fmt.Errorf("parse lab report: %v", err)
	}
	if lr.Machine == "" && len(lr.Results) == 0 {
		return nil, fmt.Errorf("parse lab report: valid JSON but not a wastelab report (no \"machine\", no \"results\"; is this the right file?)")
	}
	return &lr, nil
}

// offsetPos converts a byte offset from the JSON decoder into a 1-based
// line and column.
func offsetPos(data []byte, offset int64) (line, col int) {
	if offset > int64(len(data)) {
		offset = int64(len(data))
	}
	line, col = 1, 1
	for _, b := range data[:offset] {
		if b == '\n' {
			line++
			col = 1
		} else {
			col++
		}
	}
	return line, col
}

// run reads bench text (or an auto-detected lab report) from stdin and an
// optional lab report from labPath, and writes the merged JSON to stdout.
// machineName picks the preset whose roofline bounds the GFLOPS benchmarks
// are scored against.
func run(stdin io.Reader, stdout io.Writer, labPath, machineName string) error {
	spec := machine.Preset(machineName)
	if spec == nil {
		return fmt.Errorf("unknown machine %q", machineName)
	}
	rep := Report{
		Date:            time.Now().UTC().Format("2006-01-02T15:04:05Z"),
		GoVersion:       runtime.Version(),
		GOOS:            runtime.GOOS,
		GOARCH:          runtime.GOARCH,
		RooflineMachine: spec.Name,
	}

	if labPath != "" {
		f, err := os.Open(labPath)
		if err != nil {
			return err
		}
		rep.Lab, err = readLabReport(f)
		f.Close()
		if err != nil {
			return fmt.Errorf("%s: %v", labPath, err)
		}
		rep.Benchmarks = append(rep.Benchmarks, labBenchmarks(rep.Lab)...)
	}

	// Peek at stdin: a leading '{' means a lab report was piped in directly
	// (wastelab -json - | benchjson); anything else is `go test -bench` text.
	br := bufio.NewReaderSize(stdin, 1<<20)
	first, err := peekNonSpace(br)
	if err != nil && err != io.EOF {
		return err
	}
	switch {
	case err == io.EOF:
		// Empty stdin: fine when -lab supplied the data.
	case first == '{':
		lr, err := readLabReport(br)
		if err != nil {
			return err
		}
		if rep.Lab == nil {
			rep.Lab = lr
		}
		rep.Benchmarks = append(rep.Benchmarks, labBenchmarks(lr)...)
	default:
		sc := bufio.NewScanner(br)
		sc.Buffer(make([]byte, 1<<20), 1<<20)
		for sc.Scan() {
			if b, ok := parseLine(strings.TrimSpace(sc.Text())); ok {
				rep.Benchmarks = append(rep.Benchmarks, b)
			}
		}
		if err := sc.Err(); err != nil {
			return err
		}
	}

	annotateRoofline(rep.Benchmarks, spec)
	enc := json.NewEncoder(stdout)
	enc.SetIndent("", "  ")
	return enc.Encode(rep)
}

// peekNonSpace returns the first non-whitespace byte without consuming it.
func peekNonSpace(br *bufio.Reader) (byte, error) {
	for {
		b, err := br.ReadByte()
		if err != nil {
			return 0, err
		}
		if b == ' ' || b == '\t' || b == '\n' || b == '\r' {
			continue
		}
		return b, br.UnreadByte()
	}
}

func main() {
	labPath := flag.String("lab", "", "embed a wastelab -json lab report from this file")
	machineName := flag.String("machine", "petascale2009", "machine preset whose roofline bound scores the GFLOPS benchmarks")
	diff := flag.Bool("diff", false, "compare two reports: benchjson -diff old.json new.json; exit 1 if any benchmark regressed")
	threshold := flag.Float64("threshold", 25, "with -diff, flag a benchmark whose suite-relative slowdown exceeds this percentage (widened automatically when the whole run is noisy)")
	flag.Parse()
	if *diff {
		if flag.NArg() != 2 {
			fmt.Fprintln(os.Stderr, "benchjson: -diff needs exactly two report files (old.json new.json)")
			os.Exit(2)
		}
		regressions, err := runDiff(flag.Arg(0), flag.Arg(1), *threshold, os.Stdout)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
			os.Exit(2)
		}
		if regressions > 0 {
			os.Exit(1)
		}
		return
	}
	if err := run(os.Stdin, os.Stdout, *labPath, *machineName); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
}
