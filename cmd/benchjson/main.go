// Command benchjson converts `go test -bench` text output (on stdin) into
// a JSON benchmark record (on stdout): one object per benchmark line with
// the parsed metrics, plus run metadata. The original benchmark line is
// kept verbatim in each record's "raw" field, so the text format benchstat
// consumes can be reconstructed exactly with e.g.
//
//	jq -r '.benchmarks[].raw' BENCH_2026-08-06.json | benchstat /dev/stdin
//
// Used by `make bench-json`.
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"strings"
	"time"
)

// Benchmark is one parsed benchmark result line.
type Benchmark struct {
	Name       string  `json:"name"`
	Iterations int64   `json:"iterations"`
	NsPerOp    float64 `json:"ns_per_op"`
	// BytesPerOp and AllocsPerOp are present only under -benchmem.
	BytesPerOp  *int64 `json:"bytes_per_op,omitempty"`
	AllocsPerOp *int64 `json:"allocs_per_op,omitempty"`
	Raw         string `json:"raw"`
}

// Report is the emitted document.
type Report struct {
	Date       string      `json:"date"`
	GoVersion  string      `json:"go_version"`
	GOOS       string      `json:"goos"`
	GOARCH     string      `json:"goarch"`
	Benchmarks []Benchmark `json:"benchmarks"`
}

// parseLine parses one "BenchmarkName-8  123  456 ns/op [...]" line; ok is
// false for non-benchmark lines.
func parseLine(line string) (Benchmark, bool) {
	if !strings.HasPrefix(line, "Benchmark") {
		return Benchmark{}, false
	}
	fields := strings.Fields(line)
	if len(fields) < 4 || fields[3] != "ns/op" {
		return Benchmark{}, false
	}
	iters, err1 := strconv.ParseInt(fields[1], 10, 64)
	ns, err2 := strconv.ParseFloat(fields[2], 64)
	if err1 != nil || err2 != nil {
		return Benchmark{}, false
	}
	b := Benchmark{Name: fields[0], Iterations: iters, NsPerOp: ns, Raw: line}
	for i := 4; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseInt(fields[i], 10, 64)
		if err != nil {
			continue
		}
		switch fields[i+1] {
		case "B/op":
			b.BytesPerOp = &v
		case "allocs/op":
			b.AllocsPerOp = &v
		}
	}
	return b, true
}

func main() {
	rep := Report{
		Date:      time.Now().UTC().Format("2006-01-02T15:04:05Z"),
		GoVersion: runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
	}
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if b, ok := parseLine(line); ok {
			rep.Benchmarks = append(rep.Benchmarks, b)
		}
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
}
