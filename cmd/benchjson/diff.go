package main

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"os"
	"sort"
	"strings"

	"tenways/internal/stats"
)

// diffResult is one benchmark's old-vs-new comparison.
type diffResult struct {
	name     string
	oldNs    float64
	newNs    float64
	residual float64 // log-ratio after median centering
	verdict  string  // "", "slower", "faster"
}

// diffReports compares two benchjson reports. The comparison is noise-aware
// in two ways: the per-benchmark log-ratios are centered on their median, so
// a uniformly faster or slower machine (a different CI host) shifts nothing,
// and the flag threshold is widened to two standard deviations of the
// centered ratios when the run is globally noisy. A benchmark is a
// regression when its centered ratio exceeds the limit — i.e. it got slower
// relative to the rest of the suite by more than noise explains.
func diffReports(prev, cur Report, thresholdPct float64, w io.Writer) (regressions int, err error) {
	oldBy := make(map[string]Benchmark, len(prev.Benchmarks))
	for _, b := range prev.Benchmarks {
		oldBy[b.Name] = b
	}
	newBy := make(map[string]Benchmark, len(cur.Benchmarks))
	for _, b := range cur.Benchmarks {
		newBy[b.Name] = b
	}

	var results []diffResult
	var ratios []float64
	var added, removed []string
	for name, nb := range newBy {
		ob, ok := oldBy[name]
		if !ok {
			added = append(added, name)
			continue
		}
		if ob.NsPerOp <= 0 || nb.NsPerOp <= 0 {
			continue
		}
		r := diffResult{name: name, oldNs: ob.NsPerOp, newNs: nb.NsPerOp,
			residual: math.Log(nb.NsPerOp / ob.NsPerOp)}
		results = append(results, r)
		ratios = append(ratios, r.residual)
	}
	for name := range oldBy {
		if _, ok := newBy[name]; !ok {
			removed = append(removed, name)
		}
	}
	sort.Strings(added)
	sort.Strings(removed)
	sort.Slice(results, func(i, j int) bool { return results[i].name < results[j].name })

	if len(results) == 0 {
		fmt.Fprintln(w, "no benchmarks in common; nothing to compare")
		reportMembership(w, added, removed)
		return 0, nil
	}

	sum := stats.Summarize(ratios)
	// Robust noise scale: 1.4826 x the median absolute deviation estimates
	// the standard deviation without letting the regression being hunted
	// inflate the band that would hide it.
	devs := make([]float64, len(ratios))
	for i, r := range ratios {
		devs[i] = math.Abs(r - sum.Median)
	}
	sigma := 1.4826 * stats.Summarize(devs).Median
	limit := math.Log(1 + thresholdPct/100)
	if noisy := 2 * sigma; noisy > limit {
		limit = noisy
	}

	improvements := 0
	for i := range results {
		results[i].residual -= sum.Median
		switch {
		case results[i].residual > limit:
			results[i].verdict = "slower"
			regressions++
		case results[i].residual < -limit:
			results[i].verdict = "faster"
			improvements++
		}
	}

	fmt.Fprintf(w, "%d benchmarks compared (%s -> %s), median shift %+.1f%%, flag limit ±%.1f%%\n\n",
		len(results), orDate(prev.Date), orDate(cur.Date),
		100*(math.Exp(sum.Median)-1), 100*(math.Exp(limit)-1))
	tw := newColumnWriter(w, "benchmark", "old ns/op", "new ns/op", "vs suite", "verdict")
	for _, r := range results {
		tw.row(r.name,
			fmt.Sprintf("%.0f", r.oldNs),
			fmt.Sprintf("%.0f", r.newNs),
			fmt.Sprintf("%+.1f%%", 100*(math.Exp(r.residual)-1)),
			r.verdict)
	}
	tw.flush()
	reportMembership(w, added, removed)
	fmt.Fprintf(w, "\n%d regression(s), %d improvement(s)\n", regressions, improvements)
	return regressions, nil
}

func orDate(d string) string {
	if d == "" {
		return "?"
	}
	return d
}

func reportMembership(w io.Writer, added, removed []string) {
	if len(added) > 0 {
		fmt.Fprintf(w, "\nonly in new: %s\n", strings.Join(added, ", "))
	}
	if len(removed) > 0 {
		fmt.Fprintf(w, "\nonly in old: %s\n", strings.Join(removed, ", "))
	}
}

// columnWriter right-pads a small ASCII table.
type columnWriter struct {
	w      io.Writer
	widths []int
	rows   [][]string
}

func newColumnWriter(w io.Writer, headers ...string) *columnWriter {
	cw := &columnWriter{w: w}
	cw.row(headers...)
	return cw
}

func (cw *columnWriter) row(cells ...string) {
	for i, c := range cells {
		if i >= len(cw.widths) {
			cw.widths = append(cw.widths, 0)
		}
		if len(c) > cw.widths[i] {
			cw.widths[i] = len(c)
		}
	}
	cw.rows = append(cw.rows, cells)
}

func (cw *columnWriter) flush() {
	for _, cells := range cw.rows {
		var sb strings.Builder
		for i, c := range cells {
			if i > 0 {
				sb.WriteString("  ")
			}
			sb.WriteString(c)
			if pad := cw.widths[i] - len(c); pad > 0 && i < len(cells)-1 {
				sb.WriteString(strings.Repeat(" ", pad))
			}
		}
		fmt.Fprintln(cw.w, strings.TrimRight(sb.String(), " "))
	}
}

// readReport loads one benchjson document from disk.
func readReport(path string) (Report, error) {
	var rep Report
	data, err := os.ReadFile(path)
	if err != nil {
		return rep, err
	}
	if err := json.Unmarshal(data, &rep); err != nil {
		return rep, fmt.Errorf("%s: %v", path, err)
	}
	if len(rep.Benchmarks) == 0 {
		return rep, fmt.Errorf("%s: no benchmarks in report (is this a benchjson document?)", path)
	}
	return rep, nil
}

// runDiff is the -diff entry point: compare old and new report files, write
// the comparison, and report whether any benchmark regressed.
func runDiff(oldPath, newPath string, thresholdPct float64, w io.Writer) (regressions int, err error) {
	old, err := readReport(oldPath)
	if err != nil {
		return 0, err
	}
	neu, err := readReport(newPath)
	if err != nil {
		return 0, err
	}
	return diffReports(old, neu, thresholdPct, w)
}
