package main

import (
	"strings"
	"testing"
)

func report(ns map[string]float64) Report {
	var rep Report
	for name, v := range ns {
		rep.Benchmarks = append(rep.Benchmarks, Benchmark{Name: name, Iterations: 1, NsPerOp: v})
	}
	return rep
}

func TestDiffFlagsSingleRegression(t *testing.T) {
	old := report(map[string]float64{"BenchmarkA-8": 100, "BenchmarkB-8": 200, "BenchmarkC-8": 300, "BenchmarkD-8": 400})
	cur := report(map[string]float64{"BenchmarkA-8": 100, "BenchmarkB-8": 200, "BenchmarkC-8": 300, "BenchmarkD-8": 800})
	var sb strings.Builder
	regs, err := diffReports(old, cur, 25, &sb)
	if err != nil {
		t.Fatal(err)
	}
	if regs != 1 {
		t.Fatalf("regressions = %d, want 1\n%s", regs, sb.String())
	}
	if !strings.Contains(sb.String(), "BenchmarkD-8") || !strings.Contains(sb.String(), "slower") {
		t.Fatalf("output does not name the regression:\n%s", sb.String())
	}
}

// TestDiffIgnoresUniformSlowdown: a slower CI host scales every benchmark;
// median centering must absorb that entirely.
func TestDiffIgnoresUniformSlowdown(t *testing.T) {
	old := report(map[string]float64{"BenchmarkA-8": 100, "BenchmarkB-8": 200, "BenchmarkC-8": 300})
	cur := report(map[string]float64{"BenchmarkA-8": 250, "BenchmarkB-8": 500, "BenchmarkC-8": 750})
	var sb strings.Builder
	regs, err := diffReports(old, cur, 25, &sb)
	if err != nil {
		t.Fatal(err)
	}
	if regs != 0 {
		t.Fatalf("uniform 2.5x slowdown flagged %d regressions:\n%s", regs, sb.String())
	}
}

// TestDiffWidensLimitUnderNoise: when every benchmark moves a lot in random
// directions, 2 sigma of the centered ratios exceeds the percent threshold
// and nothing inside that band is flagged.
func TestDiffWidensLimitUnderNoise(t *testing.T) {
	old := report(map[string]float64{
		"BenchmarkA-8": 100, "BenchmarkB-8": 100, "BenchmarkC-8": 100,
		"BenchmarkD-8": 100, "BenchmarkE-8": 100, "BenchmarkF-8": 100,
	})
	cur := report(map[string]float64{
		"BenchmarkA-8": 55, "BenchmarkB-8": 170, "BenchmarkC-8": 70,
		"BenchmarkD-8": 150, "BenchmarkE-8": 60, "BenchmarkF-8": 165,
	})
	var sb strings.Builder
	regs, err := diffReports(old, cur, 5, &sb)
	if err != nil {
		t.Fatal(err)
	}
	if regs != 0 {
		t.Fatalf("noisy-but-banded run flagged %d regressions with a 5%% threshold:\n%s", regs, sb.String())
	}
	if !strings.Contains(sb.String(), "flag limit") {
		t.Fatalf("output missing the computed limit:\n%s", sb.String())
	}
}

func TestDiffReportsMembershipChanges(t *testing.T) {
	old := report(map[string]float64{"BenchmarkA-8": 100, "BenchmarkGone-8": 50})
	cur := report(map[string]float64{"BenchmarkA-8": 100, "BenchmarkNew-8": 70})
	var sb strings.Builder
	if _, err := diffReports(old, cur, 25, &sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "only in new: BenchmarkNew-8") || !strings.Contains(out, "only in old: BenchmarkGone-8") {
		t.Fatalf("membership changes not reported:\n%s", out)
	}
}

func TestDiffNoOverlap(t *testing.T) {
	old := report(map[string]float64{"BenchmarkA-8": 100})
	cur := report(map[string]float64{"BenchmarkB-8": 100})
	var sb strings.Builder
	regs, err := diffReports(old, cur, 25, &sb)
	if err != nil {
		t.Fatal(err)
	}
	if regs != 0 {
		t.Fatalf("disjoint reports flagged %d regressions", regs)
	}
	if !strings.Contains(sb.String(), "nothing to compare") {
		t.Fatalf("missing no-overlap notice:\n%s", sb.String())
	}
}
