// Command audit demonstrates the waste auditor on two built-in workloads:
// a deliberately imbalanced static loop and its work-stealing remedy. It
// prints the measured time breakdown and the diagnosis for each.
//
// Usage:
//
//	audit [-workers 4] [-tasks 2000]
package main

import (
	"flag"
	"fmt"
	"time"

	"tenways"
)

func main() {
	workers := flag.Int("workers", 4, "pool width")
	tasks := flag.Int("tasks", 2000, "number of loop iterations")
	flag.Parse()

	// Skewed work: the first tenth of iterations are 20x heavier. Sleeping
	// stands in for the blocking operations of a real workload and keeps
	// the demonstration meaningful even on a single-core host.
	work := func(i int) {
		d := time.Millisecond
		if i < *tasks/10 {
			d = 20 * time.Millisecond
		}
		time.Sleep(d)
	}

	fmt.Printf("auditing a skewed loop (%d tasks, %d workers)\n\n", *tasks, *workers)

	fmt.Println("== static block partition (wasteful) ==")
	report(tenways.Audit(*workers, func(p *tenways.Pool) {
		p.ForEachStatic(*tasks, work)
	}))

	fmt.Println("== work stealing (remedied) ==")
	report(tenways.Audit(*workers, func(p *tenways.Pool) {
		p.ForEachStealing(*tasks, 8, work)
	}))
}

func report(b tenways.Breakdown, advice []tenways.Advice) {
	fmt.Printf("breakdown: %s\n", b)
	fmt.Printf("imbalance: %.2f\n", b.Imbalance())
	if len(advice) == 0 {
		fmt.Println("diagnosis: no waste above thresholds")
	}
	for _, a := range advice {
		fmt.Printf("diagnosis: [%s] %s — %s\n  remedy: %s\n",
			a.ModeID, a.Name, a.Evidence, a.Remedy)
	}
	fmt.Println()
}
