// Command wastelabd serves the tenways lab over HTTP: a long-running
// daemon exposing the experiment registry, the diagnosis engine, and the
// autotuner to other systems, with the repo's own remedies composed on the
// request path (sharded result cache, request coalescing, bounded
// admission with load shedding, per-request deadlines) and /metrics
// self-measurement.
//
// Usage:
//
//	wastelabd -addr :8606 -parallel 4 -cache-size 1024
//
// Endpoints:
//
//	GET  /healthz          liveness probe
//	GET  /metrics          daemon metrics snapshot (?format=text)
//	GET  /v1/experiments   experiment catalog
//	GET  /v1/run           ?id=T1 [&machine=][&seed=][&quick=][&format=][&timeout=]
//	POST /v1/diagnose      {"workers":[{"compute":4,"sync-wait":5}]}
//	GET  /v1/tune          ?id=W1-block [&machine=][&quick=]
//
// The daemon exits 0 on SIGINT/SIGTERM after draining in-flight requests,
// 1 on listener failure, 2 on usage errors.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"tenways/internal/core"
	"tenways/internal/machine"
	"tenways/internal/serve"
)

func main() {
	var (
		addr        = flag.String("addr", ":8606", "listen address")
		parallel    = flag.Int("parallel", 4, "lab runs executing concurrently")
		queueDepth  = flag.Int("queue", 64, "callers allowed to wait for a run slot before 429s")
		cacheSize   = flag.Int("cache-size", 1024, "result-cache capacity in entries")
		machineName = flag.String("machine", "petascale2009", "default machine preset for requests that pick none")
		reqTimeout  = flag.Duration("timeout", 2*time.Minute, "default per-request deadline")
		maxTimeout  = flag.Duration("max-timeout", 10*time.Minute, "cap on the per-request ?timeout= parameter")
		drain       = flag.Duration("drain", 15*time.Second, "shutdown grace period for in-flight requests")
	)
	flag.Parse()
	if machine.Preset(*machineName) == nil {
		fmt.Fprintf(os.Stderr, "wastelabd: unknown machine preset %q\n", *machineName)
		os.Exit(2)
	}

	srv := serve.New(core.NewLab(), serve.Options{
		Parallel:       *parallel,
		QueueDepth:     *queueDepth,
		CacheSize:      *cacheSize,
		DefaultTimeout: *reqTimeout,
		MaxTimeout:     *maxTimeout,
		Machine:        *machineName,
	})
	hs := &http.Server{
		Addr:              *addr,
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 5 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	// The listener goroutine reports back over errc; shutdown drains it so
	// the goroutine never outlives main.
	errc := make(chan error, 1)
	go func() { errc <- hs.ListenAndServe() }()
	fmt.Fprintf(os.Stderr, "wastelabd: listening on %s (parallel=%d queue=%d cache=%d machine=%s)\n",
		*addr, *parallel, *queueDepth, *cacheSize, *machineName)

	select {
	case err := <-errc:
		fmt.Fprintf(os.Stderr, "wastelabd: %v\n", err)
		os.Exit(1)
	case <-ctx.Done():
	}
	stop()
	fmt.Fprintln(os.Stderr, "wastelabd: draining")
	sctx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := hs.Shutdown(sctx); err != nil {
		fmt.Fprintf(os.Stderr, "wastelabd: shutdown: %v\n", err)
	}
	if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
		fmt.Fprintf(os.Stderr, "wastelabd: %v\n", err)
		os.Exit(1)
	}
}
