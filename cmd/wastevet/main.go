// Command wastevet runs the waste-mode static analyzer over the repo: the
// determinism guards that keep the modelled plane byte-identical, the
// source-level mirrors of the keynote's ten ways, and the interprocedural
// flow rules (lock order, guarded fields, goroutine leaks, close/WaitGroup
// discipline). It follows wastelab's conventions: renderer-backed table
// output, a JSON report for machine consumers, and a non-zero exit when
// anything is wrong.
//
// Usage:
//
//	wastevet ./...
//	wastevet -rules wallclock,lockorder internal/obs
//	wastevet -format markdown -suppressed ./...
//	wastevet -format sarif ./...
//	wastevet -fix -n ./...   # dry run: print the diff the fixes would make
//	wastevet -fix ./...      # apply every suggested fix in place
//	wastevet -json wastevet.json ./...
//	wastevet -list
//
// Exit status: 0 when no unsuppressed finding remains (fixed counts as
// resolved), 1 when findings remain, 2 for usage or load errors.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"tenways/internal/lint"
	_ "tenways/internal/lint/flow" // registers the interprocedural rules
	"tenways/internal/report"
)

func main() {
	var (
		list       = flag.Bool("list", false, "list rules and exit")
		rules      = flag.String("rules", "", "comma-separated rule subset (default: all)")
		format     = flag.String("format", "ascii", "output format: ascii, markdown, csv, json, sarif")
		jsonPath   = flag.String("json", "", "write a JSON findings report to this file ('-' for stdout)")
		suppressed = flag.Bool("suppressed", false, "also print suppressed findings")
		fix        = flag.Bool("fix", false, "apply suggested fixes to the files in place")
		dryRun     = flag.Bool("n", false, "with -fix, print the diff instead of writing files")
	)
	flag.Parse()

	if *list {
		if err := (report.ASCII{}).Table(os.Stdout, lint.CatalogTable("LINT", "wastevet rule catalog", nil)); err != nil {
			fatal(err)
		}
		return
	}

	var renderer report.Renderer
	if *format != "sarif" {
		var err error
		renderer, err = report.RendererByName(*format)
		if err != nil {
			fatal(err)
		}
	}

	cfg := lint.DefaultConfig()
	if *rules != "" {
		cfg.Rules = strings.Split(*rules, ",")
	}
	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	loader, err := lint.NewLoader()
	if err != nil {
		fatal(err)
	}
	pkgs, err := loader.Load(patterns...)
	if err != nil {
		fatal(err)
	}
	res, err := lint.Analyze(cfg, loader.Root(), pkgs)
	if err != nil {
		fatal(err)
	}

	if *fix {
		runFix(loader.Root(), res, *dryRun)
		return
	}

	if *format == "sarif" {
		if err := lint.WriteSARIF(os.Stdout, res); err != nil {
			fatal(err)
		}
	} else {
		for _, f := range res.Findings {
			if f.Suppressed && !*suppressed {
				continue
			}
			fmt.Println(f.String())
		}
		if err := renderer.Table(os.Stdout, lint.CatalogTable("LINT", lint.Summary(res), res)); err != nil {
			fatal(err)
		}
	}

	if *jsonPath != "" {
		if err := writeJSON(*jsonPath, res); err != nil {
			fatal(err)
		}
		if *jsonPath != "-" {
			fmt.Printf("wrote %s\n", *jsonPath)
		}
	}

	if len(res.Unsuppressed()) > 0 {
		os.Exit(1)
	}
}

// runFix applies (or, in a dry run, diffs) every suggested fix. A finding
// whose fix was applied counts as resolved; anything unsuppressed and
// unfixable keeps the exit status at 1 so CI still fails on it.
func runFix(root string, res *lint.Result, dryRun bool) {
	out, err := lint.ApplyFixes(root, res.Findings)
	if err != nil {
		fatal(err)
	}
	if dryRun {
		diff, err := lint.DiffFixes(root, out)
		if err != nil {
			fatal(err)
		}
		fmt.Print(diff)
		fmt.Printf("wastevet -fix -n: %d edit(s) across %d file(s), %d skipped\n",
			out.Applied, len(out.Changed), out.Skipped)
	} else {
		if err := lint.WriteFixes(root, out); err != nil {
			fatal(err)
		}
		fmt.Printf("wastevet -fix: applied %d edit(s) across %d file(s), %d skipped\n",
			out.Applied, len(out.Changed), out.Skipped)
	}
	remaining := 0
	for _, f := range res.Unsuppressed() {
		if f.Fix == nil {
			remaining++
			fmt.Println(f.String())
		}
	}
	if remaining > 0 || out.Skipped > 0 {
		os.Exit(1)
	}
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "wastevet: %v\n", err)
	os.Exit(2)
}

// writeJSON writes the findings document to path, or stdout for "-".
func writeJSON(path string, res *lint.Result) error {
	blob, err := json.MarshalIndent(res, "", "  ")
	if err != nil {
		return err
	}
	blob = append(blob, '\n')
	if path == "-" {
		_, err := os.Stdout.Write(blob)
		return err
	}
	return os.WriteFile(path, blob, 0o644)
}
