// Command wastevet runs the waste-mode static analyzer over the repo: the
// determinism guards that keep the modelled plane byte-identical, and the
// source-level mirrors of the keynote's ten ways. It follows wastelab's
// conventions: renderer-backed table output, a JSON report for machine
// consumers, and a non-zero exit when anything is wrong.
//
// Usage:
//
//	wastevet ./...
//	wastevet -rules wallclock,atomicpad internal/obs
//	wastevet -format markdown -suppressed ./...
//	wastevet -json wastevet.json ./...
//	wastevet -list
//
// Exit status: 0 when no unsuppressed finding, 1 when findings remain,
// 2 for usage or load errors.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"tenways/internal/lint"
	"tenways/internal/report"
)

func main() {
	var (
		list       = flag.Bool("list", false, "list rules and exit")
		rules      = flag.String("rules", "", "comma-separated rule subset (default: all)")
		format     = flag.String("format", "ascii", "summary table format: ascii, markdown, csv, json")
		jsonPath   = flag.String("json", "", "write a JSON findings report to this file ('-' for stdout)")
		suppressed = flag.Bool("suppressed", false, "also print suppressed findings")
	)
	flag.Parse()

	if *list {
		if err := (report.ASCII{}).Table(os.Stdout, lint.CatalogTable("LINT", "wastevet rule catalog", nil)); err != nil {
			fmt.Fprintf(os.Stderr, "wastevet: %v\n", err)
			os.Exit(2)
		}
		return
	}

	renderer, err := report.RendererByName(*format)
	if err != nil {
		fmt.Fprintf(os.Stderr, "wastevet: %v\n", err)
		os.Exit(2)
	}

	cfg := lint.DefaultConfig()
	if *rules != "" {
		cfg.Rules = strings.Split(*rules, ",")
	}
	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	res, err := lint.Run(cfg, patterns...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "wastevet: %v\n", err)
		os.Exit(2)
	}

	for _, f := range res.Findings {
		if f.Suppressed && !*suppressed {
			continue
		}
		fmt.Println(f.String())
	}
	if err := renderer.Table(os.Stdout, lint.CatalogTable("LINT", lint.Summary(res), res)); err != nil {
		fmt.Fprintf(os.Stderr, "wastevet: %v\n", err)
		os.Exit(2)
	}

	if *jsonPath != "" {
		if err := writeJSON(*jsonPath, res); err != nil {
			fmt.Fprintf(os.Stderr, "wastevet: %v\n", err)
			os.Exit(2)
		}
		if *jsonPath != "-" {
			fmt.Printf("wrote %s\n", *jsonPath)
		}
	}

	if len(res.Unsuppressed()) > 0 {
		os.Exit(1)
	}
}

// writeJSON writes the findings document to path, or stdout for "-".
func writeJSON(path string, res *lint.Result) error {
	blob, err := json.MarshalIndent(res, "", "  ")
	if err != nil {
		return err
	}
	blob = append(blob, '\n')
	if path == "-" {
		_, err := os.Stdout.Write(blob)
		return err
	}
	return os.WriteFile(path, blob, 0o644)
}
