// Command roofline prints the machine-balance table, the kernel roofline
// placements for a chosen machine, and the roofline curves of all presets.
//
// Usage:
//
//	roofline [-machine petascale2009]
package main

import (
	"flag"
	"fmt"
	"os"

	"tenways"
)

func main() {
	machineName := flag.String("machine", "petascale2009", "machine preset for the kernel table")
	flag.Parse()

	spec := tenways.MachineByName(*machineName)
	if spec == nil {
		fmt.Fprintf(os.Stderr, "roofline: unknown machine %q\n", *machineName)
		os.Exit(2)
	}
	lab := tenways.NewLab()
	for _, id := range []string{"T2", "T4", "F8"} {
		out, err := lab.Run(id, tenways.Config{Machine: spec})
		if err != nil {
			fmt.Fprintf(os.Stderr, "roofline: %s: %v\n", id, err)
			os.Exit(1)
		}
		if err := out.Render(os.Stdout); err != nil {
			fmt.Fprintf(os.Stderr, "roofline: %v\n", err)
			os.Exit(1)
		}
		fmt.Println()
	}
}
