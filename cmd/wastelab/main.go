// Command wastelab runs the tenways evaluation suite: it lists the
// experiments, runs one or all of them on a chosen machine preset, prints
// tables to stdout, and optionally writes figure CSVs for plotting.
//
// Usage:
//
//	wastelab -list
//	wastelab -run T1 -machine petascale2009
//	wastelab -run T8,F22,F23 -csv out/
//	wastelab -run all -quick -csv out/
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"tenways"
)

func main() {
	var (
		list        = flag.Bool("list", false, "list experiments and exit")
		run         = flag.String("run", "", "comma-separated experiment ids to run, or 'all'")
		machineName = flag.String("machine", "petascale2009", "machine preset (see -machines)")
		machines    = flag.Bool("machines", false, "list machine presets and exit")
		quick       = flag.Bool("quick", false, "shrink sweeps for a fast run")
		markdown    = flag.Bool("markdown", false, "render tables as markdown instead of ASCII")
		csvDir      = flag.String("csv", "", "directory to write figure CSVs into")
	)
	flag.Parse()

	lab := tenways.NewLab()

	if *machines {
		for _, m := range tenways.Machines() {
			fmt.Printf("%-28s %d nodes x %d cores, %.3g GF/s/node, %.3g GB/s DRAM\n",
				m.Name, m.Nodes, m.CoresPerNode, m.PeakFlopsPerNode()/1e9, m.DRAM.BytesPerSec/1e9)
		}
		return
	}
	if *list || *run == "" {
		fmt.Println("experiments:")
		for _, e := range lab.Experiments() {
			fmt.Printf("  %-4s %s\n", e.ID, e.Title)
		}
		if *run == "" {
			fmt.Println("\nrun one with: wastelab -run <id> [-machine <preset>] [-quick] [-csv dir]")
		}
		return
	}

	spec := tenways.MachineByName(*machineName)
	if spec == nil {
		fmt.Fprintf(os.Stderr, "wastelab: unknown machine %q (try -machines)\n", *machineName)
		os.Exit(2)
	}
	cfg := tenways.Config{Machine: spec, Quick: *quick}

	var ids []string
	if strings.EqualFold(*run, "all") {
		ids = lab.IDs()
	} else {
		for _, id := range strings.Split(*run, ",") {
			if id = strings.TrimSpace(id); id != "" {
				ids = append(ids, id)
			}
		}
	}
	// Validate the whole list before running anything.
	for _, id := range ids {
		if _, err := lab.Get(id); err != nil {
			fmt.Fprintf(os.Stderr, "wastelab: unknown experiment %q; valid ids:\n", id)
			for _, e := range lab.Experiments() {
				fmt.Fprintf(os.Stderr, "  %-4s %s\n", e.ID, e.Title)
			}
			os.Exit(2)
		}
	}
	for _, id := range ids {
		out, err := lab.Run(id, cfg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "wastelab: %s: %v\n", id, err)
			os.Exit(1)
		}
		if *markdown && out.Table != nil {
			if err := out.Table.WriteMarkdown(os.Stdout); err != nil {
				fmt.Fprintf(os.Stderr, "wastelab: render: %v\n", err)
				os.Exit(1)
			}
		} else if err := out.Render(os.Stdout); err != nil {
			fmt.Fprintf(os.Stderr, "wastelab: render: %v\n", err)
			os.Exit(1)
		}
		fmt.Println()
		if *csvDir != "" && out.Figure != nil {
			if err := os.MkdirAll(*csvDir, 0o755); err != nil {
				fmt.Fprintf(os.Stderr, "wastelab: %v\n", err)
				os.Exit(1)
			}
			path := filepath.Join(*csvDir, strings.ToLower(id)+".csv")
			f, err := os.Create(path)
			if err != nil {
				fmt.Fprintf(os.Stderr, "wastelab: %v\n", err)
				os.Exit(1)
			}
			if err := out.Figure.WriteCSV(f); err != nil {
				f.Close()
				fmt.Fprintf(os.Stderr, "wastelab: %v\n", err)
				os.Exit(1)
			}
			if err := f.Close(); err != nil {
				fmt.Fprintf(os.Stderr, "wastelab: %v\n", err)
				os.Exit(1)
			}
			fmt.Printf("wrote %s\n\n", path)
		}
	}
}
