// Command wastelab runs the tenways evaluation suite: it lists the
// experiments, runs one or all of them on a chosen machine preset, prints
// tables to stdout, and optionally writes figure CSVs for plotting.
//
// Usage:
//
//	wastelab -list
//	wastelab -run T1 -machine petascale2009
//	wastelab -run t8,f22,f23 -seed 42 -csv out/
//	wastelab -run all -quick -csv out/
//	wastelab -tune all -machine exascale
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"tenways"
)

func main() {
	var (
		list        = flag.Bool("list", false, "list experiments and exit")
		run         = flag.String("run", "", "comma-separated experiment ids to run, or 'all'")
		machineName = flag.String("machine", "petascale2009", "machine preset (see -machines)")
		machines    = flag.Bool("machines", false, "list machine presets and exit")
		quick       = flag.Bool("quick", false, "shrink sweeps for a fast run")
		markdown    = flag.Bool("markdown", false, "render tables as markdown instead of ASCII")
		csvDir      = flag.String("csv", "", "directory to write figure CSVs into")
		seed        = flag.Uint64("seed", 0, "chaos scenario seed for T8/F22-F25 (0 = default; same seed, same tables)")
		tuneID      = flag.String("tune", "", "tune one remedy parameter by id (e.g. W1-block, f25), or 'all'")
	)
	flag.Parse()

	lab := tenways.NewLab()

	if *machines {
		for _, m := range tenways.Machines() {
			fmt.Printf("%-28s %d nodes x %d cores, %.3g GF/s/node, %.3g GB/s DRAM\n",
				m.Name, m.Nodes, m.CoresPerNode, m.PeakFlopsPerNode()/1e9, m.DRAM.BytesPerSec/1e9)
		}
		return
	}
	if *list || (*run == "" && *tuneID == "") {
		fmt.Println("experiments:")
		for _, e := range lab.Experiments() {
			fmt.Printf("  %-4s %s\n", e.ID, e.Title)
		}
		fmt.Println("\ntunables:")
		for _, tn := range tenways.Tunables(*quick) {
			fmt.Printf("  %-13s %s (default %s)\n", tn.ID, tn.Title, tn.DefaultLabel())
		}
		if *run == "" {
			fmt.Println("\nrun one with: wastelab -run <id> [-machine <preset>] [-quick] [-seed n] [-csv dir]")
			fmt.Println("tune one with: wastelab -tune <id> [-machine <preset>]")
		}
		return
	}

	spec := tenways.MachineByName(*machineName)
	if spec == nil {
		fmt.Fprintf(os.Stderr, "wastelab: unknown machine %q (try -machines)\n", *machineName)
		os.Exit(2)
	}
	cfg := tenways.Config{Machine: spec, Quick: *quick, Seed: *seed}

	if *tuneID != "" {
		if err := runTune(*tuneID, spec, *quick); err != nil {
			fmt.Fprintf(os.Stderr, "wastelab: %v\n", err)
			os.Exit(1)
		}
		if *run == "" {
			return
		}
	}

	var ids []string
	if strings.EqualFold(*run, "all") {
		ids = lab.IDs()
	} else {
		for _, id := range strings.Split(*run, ",") {
			if id = strings.TrimSpace(id); id != "" {
				ids = append(ids, id)
			}
		}
	}
	// Validate the whole list before running anything.
	for _, id := range ids {
		if _, err := lab.Get(id); err != nil {
			fmt.Fprintf(os.Stderr, "wastelab: unknown experiment %q; valid ids:\n", id)
			for _, e := range lab.Experiments() {
				fmt.Fprintf(os.Stderr, "  %-4s %s\n", e.ID, e.Title)
			}
			os.Exit(2)
		}
	}
	for _, id := range ids {
		e, _ := lab.Get(id)
		fmt.Printf("== %s: %s [machine %s]\n", e.ID, e.Title, spec.Name)
		out, err := lab.Run(id, cfg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "wastelab: %s: %v\n", id, err)
			os.Exit(1)
		}
		if *markdown && out.Table != nil {
			if err := out.Table.WriteMarkdown(os.Stdout); err != nil {
				fmt.Fprintf(os.Stderr, "wastelab: render: %v\n", err)
				os.Exit(1)
			}
		} else if err := out.Render(os.Stdout); err != nil {
			fmt.Fprintf(os.Stderr, "wastelab: render: %v\n", err)
			os.Exit(1)
		}
		fmt.Println()
		if *csvDir != "" && out.Figure != nil {
			if err := os.MkdirAll(*csvDir, 0o755); err != nil {
				fmt.Fprintf(os.Stderr, "wastelab: %v\n", err)
				os.Exit(1)
			}
			path := filepath.Join(*csvDir, strings.ToLower(e.ID)+".csv")
			f, err := os.Create(path)
			if err != nil {
				fmt.Fprintf(os.Stderr, "wastelab: %v\n", err)
				os.Exit(1)
			}
			if err := out.Figure.WriteCSV(f); err != nil {
				f.Close()
				fmt.Fprintf(os.Stderr, "wastelab: %v\n", err)
				os.Exit(1)
			}
			if err := f.Close(); err != nil {
				fmt.Fprintf(os.Stderr, "wastelab: %v\n", err)
				os.Exit(1)
			}
			fmt.Printf("wrote %s\n\n", path)
		}
	}
}

// runTune searches one tunable (or all of them) on the machine and prints
// default vs tuned parameter and modeled cost.
func runTune(id string, spec *tenways.Machine, quick bool) error {
	var tunables []tenways.Tunable
	if strings.EqualFold(id, "all") {
		tunables = tenways.Tunables(quick)
	} else {
		tn, err := tenways.TunableByID(id, quick)
		if err != nil {
			return err
		}
		tunables = []tenways.Tunable{tn}
	}
	for _, tn := range tunables {
		res, err := tn.Tune(spec, tenways.TuneOptions{})
		if err != nil {
			return fmt.Errorf("%s: %v", tn.ID, err)
		}
		def, err := tn.Objective(spec)(tn.Default)
		if err != nil {
			return fmt.Errorf("%s: %v", tn.ID, err)
		}
		saving := 0.0
		if def.Seconds > 0 {
			saving = 100 * (1 - res.Best.Cost.Seconds/def.Seconds)
		}
		fmt.Printf("== %s: %s [machine %s]\n", tn.ID, tn.Title, spec.Name)
		fmt.Printf("   default %-14s %.4g s\n", tn.DefaultLabel(), def.Seconds)
		fmt.Printf("   tuned   %-14s %.4g s  (%s, %d evaluations, %.1f%% saved)\n\n",
			res.Describe(), res.Best.Cost.Seconds, res.Strategy, res.Evaluations, saving)
	}
	return nil
}
