// Command wastelab runs the tenways evaluation suite: it lists the
// experiments, runs one or all of them on a chosen machine preset —
// serially or on a bounded parallel worker pool — prints tables in a
// choice of formats, and optionally writes figure CSVs and a JSON lab
// report for machine consumers.
//
// Usage:
//
//	wastelab -list
//	wastelab -run T1 -machine petascale2009
//	wastelab -run t8,f22,f23 -seed 42 -csv out/
//	wastelab -run all -quick -parallel 8 -timeout 10m
//	wastelab -run all -quick -format markdown
//	wastelab -run all -quick -json report.json
//	wastelab -tune all -machine exascale
//
// Exit status: 0 when every requested experiment succeeded, 1 when any
// failed (the failing IDs go to stderr), 2 for usage errors.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"tenways"
)

func main() {
	var (
		list        = flag.Bool("list", false, "list experiments and exit")
		run         = flag.String("run", "", "comma-separated experiment ids to run, or 'all'")
		machineName = flag.String("machine", "petascale2009", "machine preset (see -machines)")
		machines    = flag.Bool("machines", false, "list machine presets and exit")
		quick       = flag.Bool("quick", false, "shrink sweeps for a fast run")
		format      = flag.String("format", "ascii", "output format: ascii, markdown, csv, json")
		markdown    = flag.Bool("markdown", false, "render tables as markdown (alias for -format markdown)")
		parallel    = flag.Int("parallel", 1, "experiments to run concurrently (tables stay byte-identical at any width)")
		timeout     = flag.Duration("timeout", 0, "overall deadline for the run (0 = none), e.g. 10m")
		jsonPath    = flag.String("json", "", "write a JSON lab report to this file ('-' for stdout)")
		csvDir      = flag.String("csv", "", "directory to write figure CSVs into")
		seed        = flag.Uint64("seed", 0, "chaos scenario seed for T8/F22-F25 (0 = default; same seed, same tables)")
		tuneID      = flag.String("tune", "", "tune one remedy parameter by id (e.g. W1-block, f25), or 'all'")
		pdesSync    tenways.PDESSyncKind
	)
	flag.Var(&pdesSync, "pdes-sync", "PDES engine sync discipline for F28/F29: conservative or optimistic (F30 tables both)")
	flag.Parse()

	lab := tenways.NewLab()

	if *machines {
		for _, m := range tenways.Machines() {
			fmt.Printf("%-28s %d nodes x %d cores, %.3g GF/s/node, %.3g GB/s DRAM\n",
				m.Name, m.Nodes, m.CoresPerNode, m.PeakFlopsPerNode()/1e9, m.DRAM.BytesPerSec/1e9)
		}
		return
	}
	if *list || (*run == "" && *tuneID == "") {
		fmt.Println("experiments:")
		for _, e := range lab.Experiments() {
			fmt.Printf("  %-4s %s\n", e.ID, e.Title)
		}
		fmt.Println("\ntunables:")
		for _, tn := range tenways.Tunables(*quick) {
			fmt.Printf("  %-13s %s (default %s)\n", tn.ID, tn.Title, tn.DefaultLabel())
		}
		if *run == "" {
			fmt.Println("\nrun one with: wastelab -run <id> [-machine <preset>] [-quick] [-seed n] [-parallel n] [-format f] [-csv dir]")
			fmt.Println("tune one with: wastelab -tune <id> [-machine <preset>]")
		}
		return
	}

	spec := tenways.MachineByName(*machineName)
	if spec == nil {
		fmt.Fprintf(os.Stderr, "wastelab: unknown machine %q (try -machines)\n", *machineName)
		os.Exit(2)
	}
	if *markdown {
		*format = "markdown"
	}
	renderer, err := tenways.RendererByName(*format)
	if err != nil {
		fmt.Fprintf(os.Stderr, "wastelab: %v\n", err)
		os.Exit(2)
	}
	cfg := tenways.Config{Machine: spec, Quick: *quick, Seed: *seed, PDESSync: pdesSync}

	if *tuneID != "" {
		if err := runTune(*tuneID, spec, *quick); err != nil {
			fmt.Fprintf(os.Stderr, "wastelab: %v\n", err)
			os.Exit(1)
		}
		if *run == "" {
			return
		}
	}

	var ids []string
	if strings.EqualFold(*run, "all") {
		ids = lab.IDs()
	} else {
		for _, id := range strings.Split(*run, ",") {
			if id = strings.TrimSpace(id); id != "" {
				ids = append(ids, id)
			}
		}
	}
	// Validate the whole list before running anything.
	for i, id := range ids {
		e, err := lab.Get(id)
		if err != nil {
			fmt.Fprintf(os.Stderr, "wastelab: unknown experiment %q; valid ids:\n", id)
			for _, e := range lab.Experiments() {
				fmt.Fprintf(os.Stderr, "  %-4s %s\n", e.ID, e.Title)
			}
			os.Exit(2)
		}
		ids[i] = e.ID
	}

	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	// Stream each result as soon as it (and everything before it) is done;
	// later experiments keep running on the pool meanwhile.
	renderErr := false
	onResult := func(r tenways.RunResult) {
		fmt.Printf("== %s: %s [machine %s]\n", r.ID, r.Title, spec.Name)
		if r.Err != nil {
			fmt.Fprintf(os.Stderr, "wastelab: %s: %v\n", r.ID, r.Err)
			return
		}
		if err := r.Output.RenderWith(os.Stdout, renderer); err != nil {
			fmt.Fprintf(os.Stderr, "wastelab: render %s: %v\n", r.ID, err)
			renderErr = true
			return
		}
		fmt.Println()
		if *csvDir != "" && r.Output.Figure != nil {
			path, err := writeFigureCSV(*csvDir, r.ID, r.Output)
			if err != nil {
				fmt.Fprintf(os.Stderr, "wastelab: %v\n", err)
				renderErr = true
				return
			}
			fmt.Printf("wrote %s\n\n", path)
		}
	}

	results, runErr := lab.RunAll(ctx, cfg, tenways.RunOptions{
		Workers:  *parallel,
		IDs:      ids,
		OnResult: onResult,
	})
	if runErr != nil && results == nil {
		// Bad ID lists are caught above; this is a belt-and-braces path.
		fmt.Fprintf(os.Stderr, "wastelab: %v\n", runErr)
		os.Exit(2)
	}

	report := tenways.NewLabReport(cfg, *parallel, results)
	if *jsonPath != "" {
		if err := writeJSONReport(*jsonPath, report); err != nil {
			fmt.Fprintf(os.Stderr, "wastelab: %v\n", err)
			os.Exit(1)
		}
		if *jsonPath != "-" {
			fmt.Printf("wrote %s\n", *jsonPath)
		}
	}

	if failed := report.FailedIDs(); len(failed) > 0 {
		fmt.Fprintf(os.Stderr, "wastelab: %d of %d experiments failed: %s\n",
			len(failed), len(results), strings.Join(failed, ", "))
		os.Exit(1)
	}
	if renderErr {
		os.Exit(1)
	}
}

// writeFigureCSV writes one experiment's figure in the plotting CSV format.
func writeFigureCSV(dir, id string, out tenways.Output) (string, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", err
	}
	path := filepath.Join(dir, strings.ToLower(id)+".csv")
	f, err := os.Create(path)
	if err != nil {
		return "", err
	}
	if err := out.Figure.WriteCSV(f); err != nil {
		f.Close()
		return "", err
	}
	return path, f.Close()
}

// writeJSONReport writes the lab report to path, or stdout for "-".
func writeJSONReport(path string, report *tenways.LabReport) error {
	blob, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	blob = append(blob, '\n')
	if path == "-" {
		_, err := os.Stdout.Write(blob)
		return err
	}
	return os.WriteFile(path, blob, 0o644)
}

// runTune searches one tunable (or all of them) on the machine and prints
// default vs tuned parameter and modeled cost.
func runTune(id string, spec *tenways.Machine, quick bool) error {
	var tunables []tenways.Tunable
	if strings.EqualFold(id, "all") {
		tunables = tenways.Tunables(quick)
	} else {
		tn, err := tenways.TunableByID(id, quick)
		if err != nil {
			return err
		}
		tunables = []tenways.Tunable{tn}
	}
	for _, tn := range tunables {
		res, err := tn.Tune(spec, tenways.TuneOptions{})
		if err != nil {
			return fmt.Errorf("%s: %v", tn.ID, err)
		}
		def, err := tn.Objective(spec)(tn.Default)
		if err != nil {
			return fmt.Errorf("%s: %v", tn.ID, err)
		}
		saving := 0.0
		if def.Seconds > 0 {
			saving = 100 * (1 - res.Best.Cost.Seconds/def.Seconds)
		}
		fmt.Printf("== %s: %s [machine %s]\n", tn.ID, tn.Title, spec.Name)
		fmt.Printf("   default %-14s %.4g s\n", tn.DefaultLabel(), def.Seconds)
		fmt.Printf("   tuned   %-14s %.4g s  (%s, %d evaluations, %.1f%% saved)\n\n",
			res.Describe(), res.Best.Cost.Seconds, res.Strategy, res.Evaluations, saving)
	}
	return nil
}
