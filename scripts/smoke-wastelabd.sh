#!/bin/sh
# Smoke-test the wastelabd daemon end to end: start it on a scratch port,
# probe /healthz, run one quick experiment twice, and assert the repeat is
# a cache hit. Exercises the real binary the way CI's smoke job does.
set -eu

ADDR="${WASTELABD_ADDR:-127.0.0.1:18606}"
BIN="${WASTELABD_BIN:-./wastelabd.smoke}"
LOG="${WASTELABD_LOG:-wastelabd.smoke.log}"

go build -o "$BIN" ./cmd/wastelabd

"$BIN" -addr "$ADDR" -parallel 2 >"$LOG" 2>&1 &
PID=$!
trap 'kill "$PID" 2>/dev/null || true; rm -f "$BIN"' EXIT INT TERM

# Wait for the listener (up to ~5s).
i=0
until curl -sf "http://$ADDR/healthz" >/dev/null 2>&1; do
    i=$((i + 1))
    if [ "$i" -ge 50 ]; then
        echo "smoke: daemon never became healthy" >&2
        cat "$LOG" >&2
        exit 1
    fi
    sleep 0.1
done
echo "smoke: /healthz ok"

curl -sf "http://$ADDR/v1/experiments" | grep -q '"T12"' || {
    echo "smoke: catalog missing T12" >&2
    exit 1
}
echo "smoke: /v1/experiments lists T12"

# First run computes...
H1=$(curl -sf -D - -o /dev/null "http://$ADDR/v1/run?id=T12&quick=true" | tr -d '\r' | sed -n 's/^X-Cache: //p')
[ "$H1" = "miss" ] || { echo "smoke: first run X-Cache=$H1, want miss" >&2; exit 1; }
# ...the identical repeat must come from the cache.
H2=$(curl -sf -D - -o /dev/null "http://$ADDR/v1/run?id=T12&quick=true" | tr -d '\r' | sed -n 's/^X-Cache: //p')
[ "$H2" = "hit" ] || { echo "smoke: repeat run X-Cache=$H2, want hit" >&2; exit 1; }
echo "smoke: /v1/run cached on repeat"

curl -sf "http://$ADDR/metrics" | grep -q '"serve.cache_hits": 1' || {
    echo "smoke: /metrics does not show the cache hit" >&2
    curl -sf "http://$ADDR/metrics" >&2 || true
    exit 1
}
echo "smoke: /metrics reports the hit"

kill "$PID"
wait "$PID" 2>/dev/null || true
trap - EXIT
rm -f "$BIN" "$LOG"
echo "smoke: ok"
